(** A named, growable array of ciphertext blocks held by the server.

    Every read and write is recorded in the server's {!Trace} and counted
    against the channel in {!Cost} — this is the adversary's complete view
    of the store.  Blocks are opaque strings (ciphertexts); the store never
    interprets them.

    Round trips are counted here, one per wire frame: a single
    {!read}/{!write} is one frame, and a whole {!read_many}/{!write_many}
    batch is also exactly one frame ([Wire.Multi_get]/[Wire.Multi_put] in
    remote mode) — so the ledger matches real wire traffic in both local
    and remote modes.  Structured access patterns (an ORAM path, a bulk
    initialization) should therefore go through the batch API.

    While the trace is disabled ({!Trace.set_enabled}), cost accounting is
    suspended as well: the shared counters are not safe (or cheap) to
    mutate from multiple domains, and multi-domain sections are exactly
    when tracing is turned off.  Byte/storage totals are therefore only
    meaningful for single-domain runs. *)

type t

val name : t -> string

val length : t -> int
(** Number of block slots. *)

val size_bytes : t -> int
(** Total bytes currently stored. *)

val ensure : t -> int -> unit
(** [ensure t n] grows the store to at least [n] slots (empty blocks).
    Growing costs one round trip (it is one wire frame in remote mode). *)

val read : t -> int -> string
(** [read t i] returns block [i], tracing the access and counting the
    bytes as server→client traffic and one round trip. *)

val write : t -> int -> string -> unit
(** [write t i c] replaces block [i], tracing and counting client→server
    traffic and one round trip. *)

val read_many : t -> int list -> string list
(** [read_many t idxs] returns the blocks at [idxs] in order.  Traces one
    event per block — identical to the equivalent loop of {!read}s — but
    counts a single round trip: in remote mode the whole batch is one
    [Multi_get] frame.  The empty list performs no I/O at all. *)

val write_many : t -> (int * string) list -> unit
(** [write_many t items] writes every (slot, block) pair in list order.
    One traced event per block, one round trip ([Multi_put]) for the whole
    batch.  The empty list performs no I/O at all. *)

val write_scatter : (t * (int * string) list) list -> unit
(** [write_scatter groups] writes every group's (slot, block) pairs, in
    group order then item order — one traced event per block but a
    {e single} round trip for the whole cross-store batch (one
    [Scatter_put] frame in remote mode).  All stores must belong to the
    same server.  Empty groups are skipped; an entirely empty batch
    performs no I/O at all. *)

(** {2 Construction} — normally via {!Server.create_store}. *)

val create :
  name:string -> trace:Trace.t -> on_resize:(int -> unit) -> ?remote:Remote.t -> Cost.t -> t
(** With [?remote], blocks live in the connected server process and every
    read/write (or batch) is a wire round trip; the client still records
    its own trace and cost view (block sizes are mirrored locally). *)
