type snapshot = {
  bytes_to_server : int;
  bytes_to_client : int;
  round_trips : int;
  server_bytes : int;
  client_peak_bytes : int;
  client_current_bytes : int;
  client_underflows : int;
}

type t = {
  mutable to_server : int;
  mutable to_client : int;
  mutable trips : int;
  mutable server : int;
  mutable client_current : int;
  mutable client_peak : int;
  mutable underflows : int;
  client_tagged : (string, int) Hashtbl.t;
}

let create () =
  {
    to_server = 0;
    to_client = 0;
    trips = 0;
    server = 0;
    client_current = 0;
    client_peak = 0;
    underflows = 0;
    client_tagged = Hashtbl.create 16;
  }

let bump_peak t = if t.client_current > t.client_peak then t.client_peak <- t.client_current

let sent_to_server t n = t.to_server <- t.to_server + n
let sent_to_client t n = t.to_client <- t.to_client + n
let round_trip t = t.trips <- t.trips + 1

let client_alloc t n =
  t.client_current <- t.client_current + n;
  bump_peak t

let client_free t n =
  (* Clamp (so one accounting bug cannot poison every later reading) but
     remember that it happened: a nonzero underflow count means some
     structure was freed twice or freed larger than it was allocated. *)
  if n > t.client_current then t.underflows <- t.underflows + 1;
  t.client_current <- max 0 (t.client_current - n)

let client_set t ~tag n =
  let old = Option.value ~default:0 (Hashtbl.find_opt t.client_tagged tag) in
  Hashtbl.replace t.client_tagged tag n;
  t.client_current <- t.client_current - old + n;
  bump_peak t

let set_server_bytes t n = t.server <- n

let snapshot t =
  {
    bytes_to_server = t.to_server;
    bytes_to_client = t.to_client;
    round_trips = t.trips;
    server_bytes = t.server;
    client_peak_bytes = t.client_peak;
    client_current_bytes = t.client_current;
    client_underflows = t.underflows;
  }

let reset_peak t = t.client_peak <- t.client_current

let restore t s =
  t.to_server <- s.bytes_to_server;
  t.to_client <- s.bytes_to_client;
  t.trips <- s.round_trips;
  t.server <- s.server_bytes;
  t.client_current <- s.client_current_bytes;
  t.client_peak <- s.client_peak_bytes;
  t.underflows <- s.client_underflows;
  Hashtbl.reset t.client_tagged

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<v>bytes to server: %d@ bytes to client: %d@ round trips: %d@ server storage: %d B@ \
     client peak memory: %d B@]"
    s.bytes_to_server s.bytes_to_client s.round_trips s.server_bytes s.client_peak_bytes
