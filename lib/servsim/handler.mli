(** Server-side request dispatch, shared by every serving mode.

    One [state] is one tenant session: the ciphertext stores of a single
    namespace, the access-pattern {!Trace} recorded where the adversary
    sits, and a per-session {!Cost} ledger (round trips and bytes on the
    wire).  The legacy one-client fork server ({!Remote_server}) owns
    exactly one; the multi-tenant daemon ([Service.Daemon]) keeps one per
    namespace, so no accounting or trace state is ever shared across
    tenants. *)

type state

val create_state : unit -> state

(** {2 Dynamic FD sessions}

    The dynamic verbs ([Begin_dynamic]/[Insert_row]/[Delete_row]/
    [Revalidate]) are served by a pluggable engine: this module sits
    {e below} the discovery engine in the library graph (the engine's
    block stores are servsim stores), so the engine registers itself
    here as a provider of closures.  Executables that serve dynamic
    sessions call [Dynserve.install ()] once at startup; without a
    provider the verbs answer a clean [Error]. *)

type dyn = {
  dyn_dispatch : Wire.request -> Wire.response;
      (** serve one [Insert_row]/[Delete_row]/[Revalidate]; must be
          deterministic (including its errors), because journal replay
          re-dispatches the same requests to rebuild the session *)
  dyn_release : unit -> unit;  (** free the engine's retained structures *)
}

val set_dyn_provider : (Wire.request -> (dyn * Wire.response, string) result) -> unit
(** Register the engine.  Called with each [Begin_dynamic] request; on
    success returns the live session plus the response to that request
    (the initial [Fds_reply]); on failure a client-fault message that
    becomes an [Error] response.  Last registration wins. *)

val dynamic_available : unit -> bool
(** Is a dynamic-session provider registered in this process? *)

val dynamic_verb : Wire.request -> bool
(** Is this one of the v5 dynamic-session verbs? *)

val has_dyn : state -> bool
(** Does this session currently hold a live dynamic session? *)

val dyn_counters : state -> int * int * int
(** [(inserts, deletes, revalidates)] served to this session, erroring
    dispatches included. *)

val export_dyn : state -> Wire.request list
(** The session's dynamic update history in service order — the
    successful [Begin_dynamic] followed by every [Insert_row]/
    [Delete_row]/[Revalidate] dispatched to the live session.
    Re-dispatching these through {!handle} on a fresh state rebuilds the
    engine's structures, trace and counters bit-identically (the engine
    is deterministic given the [Begin_dynamic] seed); {!Store.Tenant}
    embeds exactly this list in its snapshots. *)

val release_dyn : state -> unit
(** Free the live dynamic session's structures, if any.  The update
    history is retained: eviction persists it via {!export_dyn} and the
    next rehydration replays it. *)

val handle : state -> Wire.request -> Wire.response
(** Dispatch one request against this session's stores.  Store ops,
    [Digest] and [Total_bytes] are served from the session state;
    [Ping] answers [Pong]; [Hello] and [Bye] answer [Ok] (connection
    lifecycle is the serving loop's job); [Stats] answers the session
    ledger plus the percentiles of this session's latency reservoir
    (see {!record_latency}) — the daemon intercepts [Stats] and answers
    from its per-namespace metrics instead.
    @raise Wire.Protocol_error e.g. on access to a store that does not
    exist (serving loops turn this into an [Error] response). *)

val counted : Wire.request -> bool
(** Whether the frame counts toward the session's round-trip ledger.
    [Hello] (and the version byte, which never reaches the dispatcher)
    are connection setup and uncounted — mirroring the client's
    [Remote.frames]. *)

val account_request : state -> bytes:int -> unit
(** Charge one served request frame to the session ledger: one round
    trip plus [bytes] received.  Call before dispatching, so a [Stats]
    request observes itself in [frames] exactly like the client's
    [Remote.frames] counter does. *)

val account_response : state -> bytes:int -> unit
(** Charge the response bytes and refresh the server-storage gauge. *)

val record_latency : state -> float -> unit
(** Push one service latency (seconds, request fully parsed → response
    written) into the session's bounded reservoir.  Serving loops that
    dispatch through {!handle} directly (the fork server) call this so
    [Stats] reports real percentiles; the daemon samples into its own
    per-namespace {i Metrics} instead. *)

val latency_percentiles : state -> float * float * float
(** Nearest-rank (p50, p95, p99) in seconds over the reservoir;
    [(0., 0., 0.)] before any sample. *)

val replay : state -> Wire.request -> unit
(** Re-dispatch one journaled request exactly as the daemon's serving
    path would: charge {!account_request} with the frame's canonical
    encoded size, dispatch through {!handle} (a [Wire.Protocol_error]
    becomes the same [Error] response the server would have sent), then
    charge {!account_response} with the response's encoded size.
    Replaying a request journal in order rebuilds the session's stores,
    trace digests and cost ledger bit-identically to the original run. *)

val export_stores : state -> (string * string array) list
(** The session's stores as [(name, blocks)] with each block array
    trimmed to its logical length, sorted by name — a deterministic
    image for snapshotting. *)

val trace : state -> Trace.t
val cost : state -> Cost.t

val total_bytes : state -> int
(** Current ciphertext bytes held across this session's stores. *)

val started : state -> float
(** [Unix.gettimeofday] at session creation. *)
