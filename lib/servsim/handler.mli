(** Server-side request dispatch, shared by every serving mode.

    One [state] is one tenant session: the ciphertext stores of a single
    namespace, the access-pattern {!Trace} recorded where the adversary
    sits, and a per-session {!Cost} ledger (round trips and bytes on the
    wire).  The legacy one-client fork server ({!Remote_server}) owns
    exactly one; the multi-tenant daemon ([Service.Daemon]) keeps one per
    namespace, so no accounting or trace state is ever shared across
    tenants. *)

type state

val create_state : unit -> state

val handle : state -> Wire.request -> Wire.response
(** Dispatch one request against this session's stores.  Store ops,
    [Digest] and [Total_bytes] are served from the session state;
    [Ping] answers [Pong]; [Hello] and [Bye] answer [Ok] (connection
    lifecycle is the serving loop's job); [Stats] answers the session
    ledger plus the percentiles of this session's latency reservoir
    (see {!record_latency}) — the daemon intercepts [Stats] and answers
    from its per-namespace metrics instead.
    @raise Wire.Protocol_error e.g. on access to a store that does not
    exist (serving loops turn this into an [Error] response). *)

val counted : Wire.request -> bool
(** Whether the frame counts toward the session's round-trip ledger.
    [Hello] (and the version byte, which never reaches the dispatcher)
    are connection setup and uncounted — mirroring the client's
    [Remote.frames]. *)

val account_request : state -> bytes:int -> unit
(** Charge one served request frame to the session ledger: one round
    trip plus [bytes] received.  Call before dispatching, so a [Stats]
    request observes itself in [frames] exactly like the client's
    [Remote.frames] counter does. *)

val account_response : state -> bytes:int -> unit
(** Charge the response bytes and refresh the server-storage gauge. *)

val record_latency : state -> float -> unit
(** Push one service latency (seconds, request fully parsed → response
    written) into the session's bounded reservoir.  Serving loops that
    dispatch through {!handle} directly (the fork server) call this so
    [Stats] reports real percentiles; the daemon samples into its own
    per-namespace {i Metrics} instead. *)

val latency_percentiles : state -> float * float * float
(** Nearest-rank (p50, p95, p99) in seconds over the reservoir;
    [(0., 0., 0.)] before any sample. *)

val replay : state -> Wire.request -> unit
(** Re-dispatch one journaled request exactly as the daemon's serving
    path would: charge {!account_request} with the frame's canonical
    encoded size, dispatch through {!handle} (a [Wire.Protocol_error]
    becomes the same [Error] response the server would have sent), then
    charge {!account_response} with the response's encoded size.
    Replaying a request journal in order rebuilds the session's stores,
    trace digests and cost ledger bit-identically to the original run. *)

val export_stores : state -> (string * string array) list
(** The session's stores as [(name, blocks)] with each block array
    trimmed to its logical length, sorted by name — a deterministic
    image for snapshotting. *)

val trace : state -> Trace.t
val cost : state -> Cost.t

val total_bytes : state -> int
(** Current ciphertext bytes held across this session's stores. *)

val started : state -> float
(** [Unix.gettimeofday] at session creation. *)
