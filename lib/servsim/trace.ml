type op = Read | Write

type event = { store : string; op : op; addr : int; len : int }

(* A 64-bit FNV-1a state kept as two 32-bit halves in immediate ints, so
   the per-byte fold is pure unboxed arithmetic (the Int64 version boxed
   every intermediate — ~150 words of garbage per recorded event on the
   hottest path in the tree).

   With p = 2^40 + 0x1b3 (the FNV-1a prime) and h = hi·2^32 + lo:
     h·p mod 2^64 = (lo·0x1b3) + ((lo·2^8 + hi·0x1b3)·2^32)  [mod 2^64]
   so the low half of the product is (lo·0x1b3) mod 2^32 and the carry
   into the high half is (lo·0x1b3) / 2^32.  lo·0x1b3 fits in 41 bits —
   well inside OCaml's 63-bit ints. *)
type digest = { mutable lo : int; mutable hi : int }

let fnv_offset_lo = 0x84222325
let fnv_offset_hi = 0xcbf29ce4

type name = { str : string; codes : int array }

let name str = { str; codes = Array.init (String.length str) (fun i -> Char.code str.[i]) }

type t = {
  keep_events : bool;
  mutable events_rev : event list;
  mutable count : int;
  full : digest;
  shape : digest;
  mutable enabled : bool;
}

let create ?(keep_events = false) () =
  {
    keep_events;
    events_rev = [];
    count = 0;
    full = { lo = fnv_offset_lo; hi = fnv_offset_hi };
    shape = { lo = fnv_offset_lo; hi = fnv_offset_hi };
    enabled = true;
  }

let fold_byte d byte =
  let lo = d.lo lxor (byte land 0xff) in
  let m = lo * 0x1b3 in
  d.lo <- m land 0xffffffff;
  d.hi <- ((lo lsl 8) + (d.hi * 0x1b3) + (m lsr 32)) land 0xffffffff

let fold_int d v =
  for shift = 0 to 7 do
    fold_byte d ((v lsr (shift * 8)) land 0xff)
  done

(* Digesting is on the hot path of every simulated access; the loop
   bound is the one bounds check. *)
let fold_string d s =
  for i = 0 to String.length s - 1 do
    fold_byte d (Char.code (String.unsafe_get s i))
  done
[@@lint.allow "no-unsafe-casts"]

let fold_codes d (a : int array) =
  for i = 0 to Array.length a - 1 do
    fold_byte d (Array.unsafe_get a i)
  done

let op_tag = function Read -> 1 | Write -> 2

let record t e =
  if t.enabled then begin
    t.count <- t.count + 1;
    if t.keep_events then t.events_rev <- e :: t.events_rev;
    fold_string t.full e.store;
    fold_int t.full (op_tag e.op);
    fold_int t.full e.addr;
    fold_int t.full e.len;
    fold_string t.shape e.store;
    fold_int t.shape (op_tag e.op);
    fold_int t.shape e.len
  end

(* Hot path for [Block_store]: identical folds to [record], but the store
   name arrives pre-interned (its bytes already split into an int array)
   and no event record is built unless retention is on. *)
let record_name t nm op ~addr ~len =
  if t.enabled then begin
    t.count <- t.count + 1;
    if t.keep_events then
      t.events_rev <- { store = nm.str; op; addr; len } :: t.events_rev;
    fold_codes t.full nm.codes;
    fold_int t.full (op_tag op);
    fold_int t.full addr;
    fold_int t.full len;
    fold_codes t.shape nm.codes;
    fold_int t.shape (op_tag op);
    fold_int t.shape len
  end

let mark t label =
  if t.enabled then begin
    fold_string t.full label;
    fold_string t.shape label
  end

let digest_value d =
  Int64.logor (Int64.shift_left (Int64.of_int d.hi) 32) (Int64.of_int d.lo)

let count t = t.count
let full_digest t = digest_value t.full
let shape_digest t = digest_value t.shape
let events t = List.rev t.events_rev
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

(* The rolling FNV state is the persistence object: restoring the four
   32-bit halves and the count continues both digest streams exactly
   where they stopped. *)
type persisted = {
  p_count : int;
  p_full_lo : int;
  p_full_hi : int;
  p_shape_lo : int;
  p_shape_hi : int;
}

let save t =
  {
    p_count = t.count;
    p_full_lo = t.full.lo;
    p_full_hi = t.full.hi;
    p_shape_lo = t.shape.lo;
    p_shape_hi = t.shape.hi;
  }

let load t p =
  t.count <- p.p_count;
  t.full.lo <- p.p_full_lo;
  t.full.hi <- p.p_full_hi;
  t.shape.lo <- p.p_shape_lo;
  t.shape.hi <- p.p_shape_hi;
  t.events_rev <- []
