(** Client-side connection to a remote server process. *)

type t

val connect_fd : ?pid:int -> ?namespace:string -> ?depth:int -> Unix.file_descr -> t
(** Wrap a connected descriptor (e.g. from {!Remote_server.fork_server});
    [pid] is reaped on {!close}.  Performs the one-byte version handshake
    and then binds the connection to [namespace] (default ["default"])
    with a [Hello] frame — an isolated store namespace with its own
    server-side trace and cost ledgers when the peer is the multi-tenant
    daemon.  Neither setup exchange is counted in {!frames}.

    [depth] (default 1) bounds how many request frames may be in flight
    at once.  Depth 1 is the classic strict request/response client.  A
    larger depth enables {!multi_put_async}, {!pipelined} and the raw
    {!send}/{!recv} pair to keep the wire full: requests are buffered
    and flushed in batches, and responses are matched to requests in
    order (the server serves one connection strictly sequentially, so
    ordered matching is exact, not heuristic).  Every op above is
    counted in {!frames} exactly as its synchronous equivalent, and
    synchronous calls transparently collect outstanding asynchronous
    acknowledgements first — ledgers and digests are therefore
    bit-identical to a depth-1 run of the same op sequence.
    @raise Wire.Protocol_error if the server speaks a different protocol
    version, rejects the session, or closes during setup. *)

val connect_unix : ?namespace:string -> ?depth:int -> string -> t
(** [connect_unix path] connects to a daemon listening on a Unix-domain
    socket at [path], then behaves as {!connect_fd}. *)

val connect_tcp : ?namespace:string -> ?depth:int -> host:string -> port:int -> unit -> t
(** [connect_tcp ~host ~port ()] connects over TCP (numeric address or
    hostname; [TCP_NODELAY] is set), then behaves as {!connect_fd}. *)

val call : t -> Wire.request -> Wire.response
(** Synchronous request/response; first collects every outstanding
    {!multi_put_async} acknowledgement (ordered matching).
    @raise Wire.Protocol_error on an [Error] response. *)

val depth : t -> int
(** The connection's pipelining depth (>= 1). *)

val inflight : t -> int
(** Outstanding frames awaiting responses (async puts + raw sends). *)

val multi_put_async : t -> store:string -> (int * string) list -> unit
(** Like {!multi_put}, but with [depth > 1] it only waits when [depth]
    acknowledgements are already outstanding (collecting the oldest) —
    writes stream without a round-trip stall per frame.  Errors surface
    on the op that collects the acknowledgement ({!drain} or the next
    synchronous call).  Identical to {!multi_put} at depth 1. *)

val drain : t -> unit
(** Collect every outstanding {!multi_put_async} acknowledgement.
    @raise Wire.Protocol_error if any collected response is an error. *)

val pipelined : t -> Wire.request list -> Wire.response list
(** Issue a batch with up to [depth] frames in flight, returning raw
    responses in request order ([Error] responses are returned, not
    raised — the batch always completes).  With depth 1 this degrades
    to sequential calls. *)

val send : t -> Wire.request -> unit
(** Raw pipelining primitive for load harnesses: queue one request
    (buffered until the next {!recv} flushes) after collecting any
    outstanding async puts.  The caller must {!recv} exactly one
    response per send, in order, and may have at most [depth]
    outstanding.  Counted in {!frames}. *)

val recv : t -> Wire.response
(** The response to the oldest un-{!recv}ed {!send} (raw: [Error] is
    returned, not raised).
    @raise Wire.Protocol_error when nothing is in flight. *)

val multi_get : t -> store:string -> int list -> string list
(** One [Multi_get] frame; values in index order.  No-op (no frame) on the
    empty list. *)

val multi_put : t -> store:string -> (int * string) list -> unit
(** One [Multi_put] frame.  No-op (no frame) on the empty list. *)

val scatter_put : t -> (string * (int * string) list) list -> unit
(** One [Scatter_put] frame writing batches across several stores.
    No-op (no frame) when every group is empty. *)

val scatter_put_async : t -> (string * (int * string) list) list -> unit
(** Fire-and-forget {!scatter_put} on a pipelined connection, with the
    same bounded-window backpressure as {!multi_put_async}.  Identical
    to {!scatter_put} at depth 1. *)

(** {2 Dynamic FD sessions (protocol v5)}

    Drivers for the streaming update verbs.  Cells travel as
    [Relation.Codec]-encoded strings (see [Dynserve.encode_row]); the
    server must have a dynamic engine installed. *)

val begin_dynamic :
  t -> ?capacity:int -> ?max_lhs:int -> seed:int64 -> cols:int -> string list list -> Wire.dyn_fds
(** Start this namespace's dynamic session over the given table and
    return the initial FDs plus the engine's trace digests.
    [capacity]/[max_lhs] default to 0 ("engine default").
    @raise Wire.Protocol_error on an [Error] response (engine missing,
    session already active, malformed cells) or a row/arity cap. *)

val insert_row : t -> string list -> int
(** One [Insert_row] exchange; returns the record's assigned ID. *)

val insert_rows : t -> string list list -> int list
(** Pipelined [Insert_row] burst (up to [depth] frames in flight, see
    {!pipelined}); IDs in request order.  @raise Wire.Protocol_error on
    the first [Error] response. *)

val delete_row : t -> id:int -> unit
(** One [Delete_row] exchange.  Succeeds whether or not [id] is live. *)

val revalidate : t -> Wire.dyn_fds
(** One [Revalidate] exchange: every initially discovered FD with its
    current validity, plus the engine's trace digests. *)

val ping : t -> unit
(** One [Ping]/[Pong] exchange (counted in {!frames}). *)

val stats : t -> Wire.stats
(** The server's view of this session: frames served (its round-trip
    ledger, which must equal {!frames}), bytes, service-latency
    percentiles, uptime, live session count. *)

val frames : t -> int
(** Number of request/response exchanges performed on this connection so
    far (the version handshake and the [Hello] session setup are not
    counted).  The round-trip ledger in {!Cost} is asserted against this
    counter in tests, and the server's own per-session ledger — reported
    by {!stats} — must match it too. *)

val digests : t -> full:int64 -> shape:int64 -> count:int -> bool
(** [digests t ~full ~shape ~count] asks the server for its own trace
    digests and compares with the given (client-side) ones. *)

val server_digests : t -> int64 * int64 * int
(** The server's own (full, shape, count). *)

val close : t -> unit
(** Send [Bye], close the channel, reap the child if any. *)
