(** Client-side connection to a remote server process. *)

type t

val connect_fd : ?pid:int -> ?namespace:string -> Unix.file_descr -> t
(** Wrap a connected descriptor (e.g. from {!Remote_server.fork_server});
    [pid] is reaped on {!close}.  Performs the one-byte version handshake
    and then binds the connection to [namespace] (default ["default"])
    with a [Hello] frame — an isolated store namespace with its own
    server-side trace and cost ledgers when the peer is the multi-tenant
    daemon.  Neither setup exchange is counted in {!frames}.
    @raise Wire.Protocol_error if the server speaks a different protocol
    version, rejects the session, or closes during setup. *)

val connect_unix : ?namespace:string -> string -> t
(** [connect_unix path] connects to a daemon listening on a Unix-domain
    socket at [path], then behaves as {!connect_fd}. *)

val connect_tcp : ?namespace:string -> host:string -> port:int -> unit -> t
(** [connect_tcp ~host ~port ()] connects over TCP (numeric address or
    hostname; [TCP_NODELAY] is set), then behaves as {!connect_fd}. *)

val call : t -> Wire.request -> Wire.response
(** Synchronous request/response.
    @raise Wire.Protocol_error on an [Error] response. *)

val multi_get : t -> store:string -> int list -> string list
(** One [Multi_get] frame; values in index order.  No-op (no frame) on the
    empty list. *)

val multi_put : t -> store:string -> (int * string) list -> unit
(** One [Multi_put] frame.  No-op (no frame) on the empty list. *)

val ping : t -> unit
(** One [Ping]/[Pong] exchange (counted in {!frames}). *)

val stats : t -> Wire.stats
(** The server's view of this session: frames served (its round-trip
    ledger, which must equal {!frames}), bytes, service-latency
    percentiles, uptime, live session count. *)

val frames : t -> int
(** Number of request/response exchanges performed on this connection so
    far (the version handshake and the [Hello] session setup are not
    counted).  The round-trip ledger in {!Cost} is asserted against this
    counter in tests, and the server's own per-session ledger — reported
    by {!stats} — must match it too. *)

val digests : t -> full:int64 -> shape:int64 -> count:int -> bool
(** [digests t ~full ~shape ~count] asks the server for its own trace
    digests and compares with the given (client-side) ones. *)

val server_digests : t -> int64 * int64 * int
(** The server's own (full, shape, count). *)

val close : t -> unit
(** Send [Bye], close the channel, reap the child if any. *)
