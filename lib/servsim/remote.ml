type t = {
  ic : in_channel;
  oc : out_channel;
  pid : int option;
  depth : int; (* max in-flight frames; 1 = strict request/response *)
  mutable frames : int;
  mutable closed : bool;
  (* Pipelining state.  Responses arrive strictly in request order (the
     daemon serves one connection's frames sequentially), so matching is
     a queue of what each in-flight frame expects.  [puts] tracks
     fire-and-forget [Multi_put]s; [manual] counts frames sent with the
     raw {!send}/{!recv} pair, whose responses the caller collects
     itself. *)
  puts : string Queue.t; (* op label per outstanding async put, for errors *)
  mutable manual : int;
  mutable unflushed : bool;
}

let default_namespace = "default"

let default_depth = 1

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let connect_fd ?pid ?(namespace = default_namespace) ?(depth = default_depth) fd =
  if depth < 1 then invalid_arg "Remote.connect: depth must be >= 1";
  (* A dead peer must surface as an exception on the next call, not as a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; pid; depth;
      frames = 0; closed = false; puts = Queue.create (); manual = 0; unflushed = false }
  in
  (* Version handshake: both sides announce; a stale client against a new
     server (or vice versa) fails here with a clear error instead of a
     "bad request tag" mid-session. *)
  Wire.write_hello t.oc;
  (match Wire.read_hello t.ic with
  | v when v = Wire.protocol_version -> ()
  | v ->
      raise
        (Wire.Protocol_error
           (Printf.sprintf "protocol version mismatch: client speaks %d, server speaks %d"
              Wire.protocol_version v))
  | exception End_of_file ->
      raise (Wire.Protocol_error "server closed the connection during the version handshake"));
  (* Session establishment: bind the connection to a store namespace.
     Connection setup like the version byte, so not counted in [frames]. *)
  Wire.write_request t.oc (Wire.Hello namespace);
  (match Wire.read_response t.ic with
  | Wire.Ok -> ()
  | Wire.Error msg -> raise (Wire.Protocol_error ("session rejected: " ^ msg))
  | _ -> raise (Wire.Protocol_error "unexpected response to Hello")
  | exception End_of_file ->
      raise (Wire.Protocol_error "server closed the connection during session setup"));
  t

let connect_unix ?namespace ?depth path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try retry_intr (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd ?namespace ?depth fd

let connect_tcp ?namespace ?depth ~host ~port () =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise (Wire.Protocol_error ("no address for " ^ host))
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> raise (Wire.Protocol_error ("unknown host " ^ host)))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     retry_intr (fun () -> Unix.connect fd (Unix.ADDR_INET (addr, port)));
     (* One small synchronous frame per round trip: Nagle only adds
        latency here. *)
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd ?namespace ?depth fd

let frames t = t.frames
let depth t = t.depth
let inflight t = Queue.length t.puts + t.manual

(* Buffered send: frames queue in the channel buffer and hit the wire
   in one write when something needs a response — that batching, plus
   the server draining the whole burst in one wakeup, is where
   pipelining's syscall savings come from. *)
let send_nf t req =
  Wire.write_request_sink (Wire.channel_sink t.oc) req;
  t.frames <- t.frames + 1;
  t.unflushed <- true

let flush_out t =
  if t.unflushed then begin
    flush t.oc;
    t.unflushed <- false
  end

(* Collect the response of the oldest outstanding async put. *)
let drain_one t =
  match Queue.take_opt t.puts with
  | None -> ()
  | Some what -> (
      flush_out t;
      match Wire.read_response t.ic with
      | Wire.Ok -> ()
      | Wire.Error msg -> raise (Wire.Protocol_error (what ^ ": " ^ msg))
      | _ -> raise (Wire.Protocol_error ("unexpected response to async " ^ what))
      | exception End_of_file ->
          raise (Wire.Protocol_error ("server closed with async " ^ what ^ " in flight")))

let drain t =
  while not (Queue.is_empty t.puts) do
    drain_one t
  done

let require_no_manual t op =
  if t.manual > 0 then
    raise
      (Wire.Protocol_error
         (op ^ ": " ^ string_of_int t.manual ^ " raw send(s) outstanding; recv them first"))

let call t req =
  if t.closed then raise (Wire.Protocol_error "connection closed");
  require_no_manual t "call";
  (* Order matters: every queued response precedes ours on the wire. *)
  drain t;
  send_nf t req;
  flush_out t;
  match Wire.read_response t.ic with
  | Wire.Error msg -> raise (Wire.Protocol_error msg)
  | resp -> resp

let send t req =
  if t.closed then raise (Wire.Protocol_error "connection closed");
  drain t;
  if t.manual >= t.depth then
    raise (Wire.Protocol_error "send: pipeline full; recv a response first");
  send_nf t req;
  t.manual <- t.manual + 1

let recv t =
  if t.manual = 0 then raise (Wire.Protocol_error "recv: no request in flight";);
  flush_out t;
  match Wire.read_response t.ic with
  | resp ->
      t.manual <- t.manual - 1;
      resp
  | exception End_of_file ->
      raise (Wire.Protocol_error "server closed with a raw send in flight")

let pipelined t reqs =
  if t.closed then raise (Wire.Protocol_error "connection closed");
  require_no_manual t "pipelined";
  drain t;
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let resps = Array.make n Wire.Ok in
  let sent = ref 0 and recvd = ref 0 in
  while !recvd < n do
    while !sent < n && !sent - !recvd < t.depth do
      send_nf t reqs.(!sent);
      incr sent
    done;
    flush_out t;
    (match Wire.read_response t.ic with
    | resp -> resps.(!recvd) <- resp
    | exception End_of_file ->
        raise (Wire.Protocol_error "server closed mid-pipeline"));
    incr recvd
  done;
  Array.to_list resps

let multi_get t ~store idxs =
  if idxs = [] then []
  else
    match call t (Wire.Multi_get (store, idxs)) with
    | Wire.Values vs ->
        if List.compare_lengths vs idxs <> 0 then
          raise (Wire.Protocol_error "Multi_get: value count does not match index count");
        vs
    | _ -> raise (Wire.Protocol_error "unexpected response to Multi_get")

let multi_put t ~store items =
  if items = [] then ()
  else
    match call t (Wire.Multi_put (store, items)) with
    | Wire.Ok -> ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Multi_put")

let multi_put_async t ~store items =
  if items <> [] then begin
    if t.closed then raise (Wire.Protocol_error "connection closed");
    if t.depth <= 1 then multi_put t ~store items
    else begin
      require_no_manual t "multi_put_async";
      (* Bounded window: collect the oldest acknowledgement once the
         pipeline is full, so a slow server applies backpressure instead
         of the client buffering without limit. *)
      while Queue.length t.puts >= t.depth do
        drain_one t
      done;
      send_nf t (Wire.Multi_put (store, items));
      Queue.push "Multi_put" t.puts
    end
  end

let scatter_put t groups =
  if List.for_all (fun (_, items) -> items = []) groups then ()
  else
    match call t (Wire.Scatter_put groups) with
    | Wire.Ok -> ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Scatter_put")

let scatter_put_async t groups =
  if not (List.for_all (fun (_, items) -> items = []) groups) then begin
    if t.closed then raise (Wire.Protocol_error "connection closed");
    if t.depth <= 1 then scatter_put t groups
    else begin
      require_no_manual t "scatter_put_async";
      while Queue.length t.puts >= t.depth do
        drain_one t
      done;
      send_nf t (Wire.Scatter_put groups);
      Queue.push "Scatter_put" t.puts
    end
  end

let begin_dynamic t ?(capacity = 0) ?(max_lhs = 0) ~seed ~cols rows =
  match call t (Wire.Begin_dynamic { seed; capacity; max_lhs; cols; rows }) with
  | Wire.Fds_reply r -> r
  | _ -> raise (Wire.Protocol_error "unexpected response to Begin_dynamic")

let insert_row t cells =
  match call t (Wire.Insert_row cells) with
  | Wire.Row_id id -> id
  | _ -> raise (Wire.Protocol_error "unexpected response to Insert_row")

let insert_rows t rows =
  if rows = [] then []
  else
    List.map
      (function
        | Wire.Row_id id -> id
        | Wire.Error msg -> raise (Wire.Protocol_error ("Insert_row: " ^ msg))
        | _ -> raise (Wire.Protocol_error "unexpected response to Insert_row"))
      (pipelined t (List.map (fun cells -> Wire.Insert_row cells) rows))

let delete_row t ~id =
  match call t (Wire.Delete_row id) with
  | Wire.Ok -> ()
  | _ -> raise (Wire.Protocol_error "unexpected response to Delete_row")

let revalidate t =
  match call t Wire.Revalidate with
  | Wire.Fds_reply r -> r
  | _ -> raise (Wire.Protocol_error "unexpected response to Revalidate")

let ping t =
  match call t Wire.Ping with
  | Wire.Pong -> ()
  | _ -> raise (Wire.Protocol_error "unexpected response to Ping")

let stats t =
  match call t Wire.Stats with
  | Wire.Stats_reply s -> s
  | _ -> raise (Wire.Protocol_error "unexpected response to Stats")

let server_digests t =
  match call t Wire.Digest with
  | Wire.Digests { full; shape; count } -> (full, shape, count)
  | _ -> raise (Wire.Protocol_error "unexpected response to Digest")

let digests t ~full ~shape ~count =
  let f, s, c = server_digests t in
  Int64.equal f full && Int64.equal s shape && c = count

let close t =
  if not t.closed then begin
    ((try ignore (call t Wire.Bye) with _ -> ())
    [@lint.allow "exception-hygiene"] (* best-effort goodbye: server may be gone *));
    t.closed <- true;
    close_out_noerr t.oc;
    (* ic shares the fd; closing oc closed it. *)
    match t.pid with
    | Some pid ->
        ignore (try retry_intr (fun () -> Unix.waitpid [] pid) with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
    | None -> ()
  end
