type t = {
  ic : in_channel;
  oc : out_channel;
  pid : int option;
  mutable frames : int;
  mutable closed : bool;
}

let default_namespace = "default"

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let connect_fd ?pid ?(namespace = default_namespace) fd =
  (* A dead peer must surface as an exception on the next call, not as a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; pid; frames = 0;
      closed = false }
  in
  (* Version handshake: both sides announce; a stale client against a new
     server (or vice versa) fails here with a clear error instead of a
     "bad request tag" mid-session. *)
  Wire.write_hello t.oc;
  (match Wire.read_hello t.ic with
  | v when v = Wire.protocol_version -> ()
  | v ->
      raise
        (Wire.Protocol_error
           (Printf.sprintf "protocol version mismatch: client speaks %d, server speaks %d"
              Wire.protocol_version v))
  | exception End_of_file ->
      raise (Wire.Protocol_error "server closed the connection during the version handshake"));
  (* Session establishment: bind the connection to a store namespace.
     Connection setup like the version byte, so not counted in [frames]. *)
  Wire.write_request t.oc (Wire.Hello namespace);
  (match Wire.read_response t.ic with
  | Wire.Ok -> ()
  | Wire.Error msg -> raise (Wire.Protocol_error ("session rejected: " ^ msg))
  | _ -> raise (Wire.Protocol_error "unexpected response to Hello")
  | exception End_of_file ->
      raise (Wire.Protocol_error "server closed the connection during session setup"));
  t

let connect_unix ?namespace path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try retry_intr (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd ?namespace fd

let connect_tcp ?namespace ~host ~port () =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise (Wire.Protocol_error ("no address for " ^ host))
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> raise (Wire.Protocol_error ("unknown host " ^ host)))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     retry_intr (fun () -> Unix.connect fd (Unix.ADDR_INET (addr, port)));
     (* One small synchronous frame per round trip: Nagle only adds
        latency here. *)
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd ?namespace fd

let frames t = t.frames

let call t req =
  if t.closed then raise (Wire.Protocol_error "connection closed");
  Wire.write_request t.oc req;
  t.frames <- t.frames + 1;
  match Wire.read_response t.ic with
  | Wire.Error msg -> raise (Wire.Protocol_error msg)
  | resp -> resp

let multi_get t ~store idxs =
  if idxs = [] then []
  else
    match call t (Wire.Multi_get (store, idxs)) with
    | Wire.Values vs ->
        if List.compare_lengths vs idxs <> 0 then
          raise (Wire.Protocol_error "Multi_get: value count does not match index count");
        vs
    | _ -> raise (Wire.Protocol_error "unexpected response to Multi_get")

let multi_put t ~store items =
  if items = [] then ()
  else
    match call t (Wire.Multi_put (store, items)) with
    | Wire.Ok -> ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Multi_put")

let ping t =
  match call t Wire.Ping with
  | Wire.Pong -> ()
  | _ -> raise (Wire.Protocol_error "unexpected response to Ping")

let stats t =
  match call t Wire.Stats with
  | Wire.Stats_reply s -> s
  | _ -> raise (Wire.Protocol_error "unexpected response to Stats")

let server_digests t =
  match call t Wire.Digest with
  | Wire.Digests { full; shape; count } -> (full, shape, count)
  | _ -> raise (Wire.Protocol_error "unexpected response to Digest")

let digests t ~full ~shape ~count =
  let f, s, c = server_digests t in
  Int64.equal f full && Int64.equal s shape && c = count

let close t =
  if not t.closed then begin
    ((try ignore (call t Wire.Bye) with _ -> ())
    [@lint.allow "exception-hygiene"] (* best-effort goodbye: server may be gone *));
    t.closed <- true;
    close_out_noerr t.oc;
    (* ic shares the fd; closing oc closed it. *)
    match t.pid with
    | Some pid ->
        ignore (try retry_intr (fun () -> Unix.waitpid [] pid) with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
    | None -> ()
  end
