(** Access-pattern trace of the honest-but-curious server's view.

    The persistent adversary of the paper observes, for every protocol step,
    which physical locations are touched and how many bytes move.  This
    module records exactly that view so the test suite can check
    Definition 2 (oblivious algorithm) operationally:

    - the {e full digest} folds in (store, op, address, length) of every
      access — two runs with bit-identical access patterns have equal full
      digests (used for the sorting-based method, whose comparator network
      is fixed by the input size);
    - the {e shape digest} folds in (store, op, length) but not addresses —
      ORAM-based runs touch uniformly random paths, so addresses differ
      across runs while the shape (sequence of op kinds and sizes) must be
      a deterministic function of the database size alone.

    Digests are 64-bit FNV-1a rolling hashes, updated in a streaming
    fashion so arbitrarily long traces cost O(1) memory.  Tests that need
    the raw event list can opt into retention with [keep_events]. *)

type op = Read | Write

type event = { store : string; op : op; addr : int; len : int }

type t

type name
(** A store name interned for the recording fast path: its bytes are
    pre-split so the per-event fold does no string traversal setup and the
    hot recorder allocates nothing. *)

val create : ?keep_events:bool -> unit -> t

val name : string -> name
(** [name s] interns [s]; build once per store, not per event. *)

val record : t -> event -> unit

val record_name : t -> name -> op -> addr:int -> len:int -> unit
(** [record_name t nm op ~addr ~len] is [record t { store; op; addr; len }]
    with the store name pre-interned — bit-identical digests, no per-event
    allocation (unless [keep_events] retention is on). *)

val mark : t -> string -> unit
(** [mark t label] folds a phase label into both digests.  Use it to
    delimit protocol phases so that shapes cannot align accidentally. *)

val count : t -> int
(** Number of accesses recorded so far (marks excluded). *)

val full_digest : t -> int64
val shape_digest : t -> int64

val events : t -> event list
(** Recorded events in order; empty unless created with [keep_events]. *)

(** {2 Persistence}

    The rolling FNV-1a state itself is the serializable object: saving
    the two 32-bit halves of each digest plus the event count and
    restoring them into a fresh recorder continues the stream exactly
    where it left off, so digests survive process restarts bit-identically
    without retaining the trace. *)

type persisted = {
  p_count : int;
  p_full_lo : int;  (** low 32 bits of the full digest's FNV state *)
  p_full_hi : int;
  p_shape_lo : int;
  p_shape_hi : int;
}

val save : t -> persisted

val load : t -> persisted -> unit
(** Overwrite [t]'s digest state and count with [p].  Any retained event
    list is cleared — persistence never stores raw events. *)

val set_enabled : t -> bool -> unit
(** Disable recording (e.g. during multi-domain parallel sections, where
    the single-threaded recorder must not be shared). *)

val enabled : t -> bool
