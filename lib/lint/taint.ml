(* Secret-flow lattice and abstract evaluator (rule R11; DESIGN.md §16).

   The evaluator is purely syntactic (Parsetree, no typing): names are
   resolved by the hooks, heap state is approximated per-function, and
   higher-order flows use a "closure parameters inherit the other
   arguments' taint" heuristic.  Its known blind spots are documented in
   DESIGN.md §16 alongside the lattice. *)

module Iset = Set.Make (Int)

type t = { sec : bool; deps : Iset.t }

let public = { sec = false; deps = Iset.empty }
let secret = { sec = true; deps = Iset.empty }
let param i = { sec = false; deps = Iset.singleton i }
let join a b = { sec = a.sec || b.sec; deps = Iset.union a.deps b.deps }
let joins l = List.fold_left join public l
let is_secret t = t.sec
let equal a b = Bool.equal a.sec b.sec && Iset.equal a.deps b.deps

type sink = Branch | Index | Alloc | Loop_bound | Output

let sink_tag = function
  | Branch -> "branch"
  | Index -> "index"
  | Alloc -> "alloc"
  | Loop_bound -> "loop-bound"
  | Output -> "output"

let sink_doc = function
  | Branch -> "conditional control flow"
  | Index -> "a memory index"
  | Alloc -> "an allocation size"
  | Loop_bound -> "a loop bound"
  | Output -> "observable output (wire/disk/log)"

type summary = {
  arity : int;
  labels : string list;
  result : t;
  sinks : (int * sink) list;
}

let summary_equal a b =
  a.arity = b.arity && equal a.result b.result && a.sinks = b.sinks

let bottom_summary ~arity ~labels = { arity; labels; result = public; sinks = [] }

(* Annotation forcing, applied by the call graph when it stores a
   summary: [@secret] on a val/binding makes the result secret whatever
   the body computes; [@lint.declassify] makes the function an audited
   boundary — callers see a public result and no parameter sinks (the
   body itself is still checked for direct findings). *)
let summary_force_secret s = { s with result = { s.result with sec = true } }
let summary_declassify s = { s with result = public; sinks = [] }

type callee = { cname : string; csummary : summary }

(* ------------------------------------------------------------------ *)
(* Attribute helpers                                                   *)

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt name || String.equal a.attr_name.txt ("lint." ^ name))
    attrs

let string_payload (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let declassify_reason attrs =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "lint.declassify" then
        match string_payload a with
        | Some s when String.trim s <> "" -> Some (a.attr_loc, Some s)
        | _ -> Some (a.attr_loc, None)
      else None)
    attrs

(* ------------------------------------------------------------------ *)
(* Builtin summaries for stdlib containers                             *)

let mk ?(res = public) ?(sinks = []) arity = { arity; labels = List.init arity (fun _ -> ""); result = res; sinks }

(* Result taint written in terms of params: [from [0]] = "result carries
   argument 0's taint". *)
let from is = { sec = false; deps = Iset.of_list is }

(* Functions whose result is public by the leakage model: lengths and
   cardinalities are part of Size(DB). *)
let public_result =
  [
    "String.length";
    "Bytes.length";
    "Array.length";
    "List.length";
    "Hashtbl.length";
    "Buffer.length";
    "Queue.length";
    "Stack.length";
  ]

let builtin_table : (string, int -> summary) Hashtbl.t = Hashtbl.create 64

let () =
  let add name f = Hashtbl.replace builtin_table name f in
  let fixed s = fun _ -> s in
  List.iter (fun n -> add n (fixed (mk 1 ~res:public))) public_result;
  (* Indexed reads: (container, index) -> element *)
  List.iter
    (fun n -> add n (fixed (mk 2 ~res:(from [ 0 ]) ~sinks:[ (1, Index) ])))
    [
      "Array.get";
      "Array.unsafe_get";
      "Bytes.get";
      "Bytes.unsafe_get";
      "String.get";
      "String.unsafe_get";
      "Bytes.get_uint8";
      "Bytes.get_int8";
      "Bytes.get_uint16_le";
      "Bytes.get_uint16_be";
      "Bytes.get_int16_le";
      "Bytes.get_int16_be";
      "Bytes.get_int32_le";
      "Bytes.get_int32_be";
      "Bytes.get_int64_le";
      "Bytes.get_int64_be";
    ];
  (* Indexed writes: (container, index, value) *)
  List.iter
    (fun n -> add n (fixed (mk 3 ~sinks:[ (1, Index) ])))
    [
      "Array.set";
      "Array.unsafe_set";
      "Bytes.set";
      "Bytes.unsafe_set";
      "Bytes.set_uint8";
      "Bytes.set_int8";
      "Bytes.set_uint16_le";
      "Bytes.set_uint16_be";
      "Bytes.set_int16_le";
      "Bytes.set_int16_be";
      "Bytes.set_int32_le";
      "Bytes.set_int32_be";
      "Bytes.set_int64_le";
      "Bytes.set_int64_be";
    ];
  (* Slices: (container, offset, length) *)
  List.iter
    (fun n -> add n (fixed (mk 3 ~res:(from [ 0 ]) ~sinks:[ (1, Index); (2, Alloc) ])))
    [ "String.sub"; "Bytes.sub"; "Array.sub"; "Bytes.sub_string" ];
  (* Blits: (src, src_off, dst, dst_off, len) *)
  List.iter
    (fun n ->
      add n (fixed (mk 5 ~sinks:[ (1, Index); (3, Index); (4, Loop_bound) ])))
    [ "Bytes.blit"; "Bytes.blit_string"; "String.blit"; "Array.blit" ];
  add "Bytes.fill" (fixed (mk 4 ~sinks:[ (1, Index); (2, Loop_bound) ]));
  add "Array.fill" (fixed (mk 4 ~sinks:[ (1, Index); (2, Loop_bound) ]));
  (* Allocations sized by argument 0 *)
  List.iter
    (fun n -> add n (fixed (mk 1 ~sinks:[ (0, Alloc) ])))
    [ "Bytes.create"; "Buffer.create"; "Hashtbl.create" ];
  List.iter
    (fun n -> add n (fixed (mk 2 ~res:(from [ 1 ]) ~sinks:[ (0, Alloc) ])))
    [ "Bytes.make"; "String.make"; "Array.make"; "Array.create_float"; "Array.init"; "List.init"; "String.init"; "Bytes.init" ];
  (* Representation changes keep taint *)
  List.iter
    (fun n -> add n (fixed (mk 1 ~res:(from [ 0 ]))))
    [
      "Bytes.to_string";
      "Bytes.of_string";
      "Bytes.unsafe_to_string";
      "Bytes.unsafe_of_string";
      "Bytes.copy";
      "String.copy";
      "Array.copy";
      "Buffer.contents";
      "Buffer.to_bytes";
      "Char.code";
      "Char.chr";
      "Char.lowercase_ascii";
      "Char.uppercase_ascii";
    ];
  (* Formatting propagates every argument's taint into the result. *)
  let all_args n = from (List.init n (fun i -> i)) in
  List.iter
    (fun n -> add n (fun nargs -> mk nargs ~res:(all_args nargs)))
    [ "Printf.sprintf"; "Format.asprintf"; "Format.sprintf"; "string_of_int"; "string_of_float" ];
  (* Terminal/channel/socket writes are observable output. *)
  let output_all nargs = mk nargs ~sinks:(List.init nargs (fun i -> (i, Output))) in
  List.iter (fun n -> add n output_all)
    [
      "print_string";
      "print_bytes";
      "print_endline";
      "print_char";
      "print_int";
      "prerr_string";
      "prerr_bytes";
      "prerr_endline";
      "Printf.printf";
      "Printf.eprintf";
      "Printf.fprintf";
      "Format.printf";
      "Format.eprintf";
      "Format.fprintf";
      "output_string";
      "output_bytes";
      "output_char";
      "Out_channel.output_string";
      "Out_channel.output_bytes";
      "Unix.write";
      "Unix.single_write";
      "Unix.write_substring";
      "Unix.send";
      "Unix.sendto";
    ]

let builtin name nargs =
  match Hashtbl.find_opt builtin_table name with
  | Some f -> Some { cname = name; csummary = f nargs }
  | None -> None

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)

type hooks = {
  resolve : Longident.t -> int -> callee option;
  secret_label : string -> bool;
  emit : Location.t -> tag:string -> string -> unit;
}

type fn_info = {
  params : (string * Parsetree.pattern) list;
  body : Parsetree.expression;
  secret_params : int list;
}

module Smap = Map.Make (String)

(* Mutable per-evaluation state: flow-insensitive taints of let-bound
   mutable containers, accumulated parameter sinks, and whether the
   store map changed (drives the inner fixpoint). *)
type state = {
  hooks : hooks;
  stores : (string, t) Hashtbl.t;
  mutable psinks : (int * sink) list;
  mutable changed : bool;
  mutable report : bool;
}

let store st name taint =
  let old = Option.value (Hashtbl.find_opt st.stores name) ~default:public in
  let merged = join old taint in
  if not (equal old merged) then begin
    Hashtbl.replace st.stores name merged;
    st.changed <- true
  end

let stored st name = Option.value (Hashtbl.find_opt st.stores name) ~default:public

(* A secret-derived value reaches a sink: report (final pass) and record
   the parameter dependencies for the function's summary. *)
let sink_here st (loc : Location.t) sk taint ~ctx =
  if st.report && is_secret taint then begin
    let msg =
      match ctx with
      | None ->
          let what =
            match sk with
            | Branch -> "conditional control flow"
            | Index -> "memory index"
            | Alloc -> "allocation size"
            | Loop_bound -> "loop bound"
            | Output -> "observable output (wire/disk/log)"
          in
          Printf.sprintf
            "secret-dependent %s; make the flow oblivious (Crypto.Ct, fixed shape) or add \
             [@lint.declassify \"why\"]"
            what
      | Some callee ->
          Printf.sprintf
            "secret value flows into %s inside %s; make the flow oblivious or add \
             [@lint.declassify \"why\"]"
            (sink_doc sk) callee
    in
    st.hooks.emit loc ~tag:(sink_tag sk) msg
  end;
  Iset.iter (fun i -> if not (List.mem (i, sk) st.psinks) then st.psinks <- (i, sk) :: st.psinks) taint.deps

let check_declassify st attrs =
  match declassify_reason attrs with
  | Some (_, Some _) -> true
  | Some (loc, None) ->
      if st.report then
        st.hooks.emit loc ~tag:"declassify-missing-reason"
          "[@lint.declassify] requires a justification string naming the leakage-model clause \
           that permits the flow";
      true
  | None -> false

(* All variable names bound by a pattern (with [@secret] overriding the
   bound taint). *)
let rec bind_pattern env (p : Parsetree.pattern) taint =
  let taint = if has_attr "secret" p.ppat_attributes then secret else taint in
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Smap.add txt taint env
  | Ppat_alias (p', { txt; _ }) -> bind_pattern (Smap.add txt taint env) p' taint
  | Ppat_constraint (p', _) | Ppat_lazy p' | Ppat_exception p' | Ppat_open (_, p') ->
      bind_pattern env p' taint
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left (fun e p' -> bind_pattern e p' taint) env ps
  | Ppat_construct (_, Some (_, p')) | Ppat_variant (_, Some p') -> bind_pattern env p' taint
  | Ppat_record (fields, _) ->
      List.fold_left (fun e (_, p') -> bind_pattern e p' taint) env fields
  | Ppat_or (a, b) -> bind_pattern (bind_pattern env a taint) b taint
  | _ -> env

(* Does this pattern discriminate (could fail to match)?  Multi-case
   matches always branch; a single irrefutable destructuring does not. *)
let rec refutable (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> false
  | Ppat_alias (p', _) | Ppat_constraint (p', _) | Ppat_lazy p' | Ppat_open (_, p') ->
      refutable p'
  | Ppat_tuple ps -> List.exists refutable ps
  | Ppat_record (fields, _) -> List.exists (fun (_, p') -> refutable p') fields
  | _ -> true

let rec strip_fun (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_newtype (_, e') | Pexp_coerce (e', _, _) -> strip_fun e'
  | _ -> e

(* Match call-site arguments to callee parameter positions by label,
   unlabeled arguments filling unlabeled slots in order. *)
let match_args labels (args : (Asttypes.arg_label * 'a) list) : (int option * 'a) list =
  let n = List.length labels in
  let used = Array.make (max n 1) false in
  let labels = Array.of_list labels in
  let find_label l =
    let rec go i =
      if i >= n then None
      else if (not used.(i)) && String.equal labels.(i) l then Some i
      else go (i + 1)
    in
    go 0
  in
  let next_unlabeled () =
    let rec go i =
      if i >= n then None else if (not used.(i)) && labels.(i) = "" then Some i else go (i + 1)
    in
    go 0
  in
  List.map
    (fun (lbl, a) ->
      let slot =
        match lbl with
        | Asttypes.Nolabel -> next_unlabeled ()
        | Asttypes.Labelled l | Asttypes.Optional l -> find_label l
      in
      (match slot with Some i -> used.(i) <- true | None -> ());
      (slot, a))
    args

(* Higher-order iteration helpers whose first closure parameter is a
   public position/index, not an element. *)
let hof_index_first =
  [ "List.iteri"; "List.mapi"; "List.filteri"; "Array.iteri"; "Array.mapi"; "String.iteri"; "Bytes.iteri" ]

(* Stores into let-bound mutable containers: (function, container arg,
   value args).  Field-based containers are handled by [@secret] labels
   instead (see DESIGN.md §16). *)
let store_fns =
  [
    ("Hashtbl.replace", 0, [ 2 ]);
    ("Hashtbl.add", 0, [ 2 ]);
    ("Array.set", 0, [ 2 ]);
    ("Array.unsafe_set", 0, [ 2 ]);
    ("Bytes.set", 0, [ 2 ]);
    ("Bytes.unsafe_set", 0, [ 2 ]);
    ("Bytes.blit", 2, [ 0 ]);
    ("Bytes.blit_string", 2, [ 0 ]);
    ("String.blit", 2, [ 0 ]);
    ("Array.blit", 2, [ 0 ]);
    ("Bytes.fill", 0, [ 3 ]);
    ("Buffer.add_string", 0, [ 1 ]);
    ("Buffer.add_bytes", 0, [ 1 ]);
    ("Buffer.add_char", 0, [ 1 ]);
    ("Buffer.add_subbytes", 0, [ 1 ]);
    ("Buffer.add_substring", 0, [ 1 ]);
    ("Queue.add", 1, [ 0 ]);
    ("Queue.push", 1, [ 0 ]);
    ("Stack.push", 1, [ 0 ]);
  ]

let rec lid_str = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_str l ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_str a ^ "(" ^ lid_str b ^ ")"

let last_comp = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal prefix (String.sub s 0 (String.length prefix))

let norm s = if starts_with ~prefix:"Stdlib." s then String.sub s 7 (String.length s - 7) else s

(* The base ident of a container expression, for store tracking: only
   direct let-bound names ([buf], not [t.field]). *)
let base_local (e : Parsetree.expression) =
  match (strip_fun e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
  | _ -> None

let rec eval st env (e : Parsetree.expression) : t =
  let raw = eval_desc st env e in
  if has_attr "secret" e.pexp_attributes then secret
  else if check_declassify st e.pexp_attributes then public
  else raw

and eval_desc st env (e : Parsetree.expression) : t =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_unreachable -> public
  | Pexp_ident { txt = Longident.Lident n; _ } when Smap.mem n env ->
      join (Smap.find n env) (stored st n)
  | Pexp_ident { txt; _ } -> (
      match st.hooks.resolve txt 0 with
      | Some { csummary = { arity = 0; result; _ }; _ } -> { sec = result.sec; deps = Iset.empty }
      | Some _ | None -> public)
  | Pexp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            let taint = eval st env vb.pvb_expr in
            let taint =
              if has_attr "secret" vb.pvb_attributes then secret
              else if check_declassify st vb.pvb_attributes then public
              else taint
            in
            bind_pattern acc vb.pvb_pat taint)
          env vbs
      in
      eval st env' body
  | Pexp_fun _ | Pexp_function _ -> eval_lambda st env ~param_taints:[ public ] e
  | Pexp_apply (fn, args) -> eval_apply st env e fn args
  | Pexp_match (scrut, cases) ->
      let t = eval st env scrut in
      let discriminates =
        List.length cases > 1
        || List.exists (fun (c : Parsetree.case) -> refutable c.pc_lhs || c.pc_guard <> None) cases
      in
      if discriminates then sink_here st scrut.pexp_loc Branch t ~ctx:None;
      eval_cases st env cases t
  | Pexp_try (body, cases) ->
      let t = eval st env body in
      join t (eval_cases st env cases public)
  | Pexp_ifthenelse (c, th, el) ->
      let ct = eval st env c in
      sink_here st c.pexp_loc Branch ct ~ctx:None;
      let tt = eval st env th in
      let et = match el with Some e' -> eval st env e' | None -> public in
      join tt et
  | Pexp_while (c, body) ->
      let ct = eval st env c in
      sink_here st c.pexp_loc Branch ct ~ctx:None;
      ignore (eval st env body);
      public
  | Pexp_for (pat, lo, hi, _, body) ->
      let lt = eval st env lo and ht = eval st env hi in
      sink_here st lo.pexp_loc Loop_bound lt ~ctx:None;
      sink_here st hi.pexp_loc Loop_bound ht ~ctx:None;
      ignore (eval st (bind_pattern env pat public) body);
      public
  | Pexp_tuple es | Pexp_array es -> joins (List.map (eval st env) es)
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> eval st env a | None -> public)
  | Pexp_record (fields, base) ->
      (* [@secret]-labelled fields do not taint the record value: their
         taint is re-acquired at every field read instead, keeping a
         cipher handle from poisoning everything that carries it. *)
      let ft =
        List.map
          (fun ((lid : _ Location.loc), fe) ->
            let t = eval st env fe in
            if st.hooks.secret_label (last_comp lid.txt) then public else t)
          fields
      in
      let bt = match base with Some b -> eval st env b | None -> public in
      joins (bt :: ft)
  | Pexp_field (r, lid) ->
      let rt = eval st env r in
      if st.hooks.secret_label (last_comp lid.txt) then join secret rt else rt
  | Pexp_setfield (r, _, v) ->
      let vt = eval st env v in
      (match base_local r with Some n -> store st n vt | None -> ());
      ignore (eval st env r);
      public
  | Pexp_sequence (a, b) ->
      ignore (eval st env a);
      eval st env b
  | Pexp_assert c ->
      let ct = eval st env c in
      sink_here st c.pexp_loc Branch ct ~ctx:None;
      public
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_newtype (_, e') | Pexp_lazy e'
  | Pexp_open (_, e') | Pexp_letexception (_, e') ->
      eval st env e'
  | Pexp_letmodule (_, _, e') -> eval st env e'
  | Pexp_send (e', _) -> eval st env e'
  | Pexp_extension _ | Pexp_object _ | Pexp_pack _ | Pexp_new _ | Pexp_override _
  | Pexp_setinstvar _ | Pexp_letop _ | Pexp_poly _ ->
      public

and eval_cases st env cases scrut_taint =
  joins
    (List.map
       (fun (c : Parsetree.case) ->
         let env' = bind_pattern env c.pc_lhs scrut_taint in
         (match c.pc_guard with
         | Some g ->
             let gt = eval st env' g in
             sink_here st g.pexp_loc Branch gt ~ctx:None
         | None -> ());
         eval st env' c.pc_rhs)
       cases)

(* Evaluate a lambda value.  [param_taints] supplies the taints of its
   parameters in order (last one repeated); the default is public, the
   higher-order heuristic passes the surrounding call's argument join. *)
and eval_lambda st env ~param_taints (e : Parsetree.expression) : t =
  let rec go env taints (e : Parsetree.expression) =
    let hd, tl =
      match taints with [] -> (public, []) | [ t ] -> (t, [ t ]) | t :: r -> (t, r)
    in
    match e.pexp_desc with
    | Pexp_fun (_, dflt, pat, body) ->
        (match dflt with Some d -> ignore (eval st env d) | None -> ());
        go (bind_pattern env pat hd) tl body
    | Pexp_function cases -> eval_cases st env cases hd
    | Pexp_constraint (e', _) | Pexp_newtype (_, e') -> go env taints e'
    | _ -> eval st env e
  in
  go env param_taints e

and eval_apply st env (e : Parsetree.expression) fn args =
  let fname =
    match (strip_fun fn).pexp_desc with
    | Pexp_ident { txt; _ } -> Some (norm (lid_str txt), txt)
    | _ -> None
  in
  match fname with
  | Some ("|>", _) -> (
      match args with
      | [ (_, x); (_, f) ] -> eval_apply st env e f [ (Asttypes.Nolabel, x) ]
      | _ -> joins (List.map (fun (_, a) -> eval st env a) args))
  | Some ("@@", _) -> (
      match args with
      | [ (_, f); (_, x) ] -> eval_apply st env e f [ (Asttypes.Nolabel, x) ]
      | _ -> joins (List.map (fun (_, a) -> eval st env a) args))
  | Some (":=", _) -> (
      match args with
      | [ (_, lhs); (_, rhs) ] ->
          let rt = eval st env rhs in
          (match base_local lhs with Some n -> store st n rt | None -> ());
          ignore (eval st env lhs);
          public
      | _ -> public)
  | Some ("!", _) -> (
      match args with
      | [ (_, r) ] ->
          let t = eval st env r in
          (match base_local r with Some n -> join t (stored st n) | None -> t)
      | _ -> public)
  | Some ("ignore", _) ->
      List.iter (fun (_, a) -> ignore (eval st env a)) args;
      public
  | Some (raw, lid) -> (
      (* Track stores through known container mutators, whatever else
         the call resolves to. *)
      (match List.find_opt (fun (n, _, _) -> String.equal n raw) store_fns with
      | Some (_, ci, vis) -> (
          let arr = Array.of_list (List.map snd args) in
          match if ci < Array.length arr then base_local arr.(ci) else None with
          | Some n ->
              List.iter
                (fun vi -> if vi < Array.length arr then store st n (eval st env arr.(vi)))
                vis
          | None -> ())
      | None -> ());
      match st.hooks.resolve lid (List.length args) with
      | Some callee -> apply_callee st env callee args
      | None -> eval_unknown st env ~raw:(Some raw) args)
  | None ->
      let ft = eval st env fn in
      join ft (eval_unknown st env ~raw:None args)

(* Known callee: instantiate the summary with argument taints, flag
   arguments that reach a sink inside the callee. *)
and apply_callee st env callee args =
  let s = callee.csummary in
  (* Lambda arguments are still evaluated for their interior flows,
     with public parameters. *)
  let matched = match_args s.labels args in
  let arg_taints = List.map (fun (slot, a) -> (slot, a, eval st env a)) matched in
  List.iter
    (fun (slot, (a : Parsetree.expression), at) ->
      match slot with
      | Some i ->
          List.iter
            (fun (j, sk) -> if j = i then sink_here st a.pexp_loc sk at ~ctx:(Some callee.cname))
            s.sinks
      | None -> ())
    arg_taints;
  let base = if s.result.sec then secret else public in
  List.fold_left
    (fun acc (slot, _, at) ->
      match slot with
      | Some i when Iset.mem i s.result.deps -> join acc at
      | Some _ -> acc
      | None -> join acc at)
    base arg_taints

(* Unknown callee: result joins every argument; syntactic lambdas are
   evaluated with their parameters bound to the other arguments' join
   (index-first helpers keep their counter public). *)
and eval_unknown st env ~raw args =
  let is_lambda a =
    match (strip_fun a).pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false
  in
  let plain =
    List.filter_map (fun (_, a) -> if is_lambda a then None else Some (eval st env a)) args
  in
  let lamt = joins plain in
  let index_first = match raw with Some r -> List.mem r hof_index_first | None -> false in
  let lam_taints =
    List.filter_map
      (fun (_, a) ->
        if is_lambda a then
          Some
            (eval_lambda st env
               ~param_taints:(if index_first then [ public; lamt ] else [ lamt ])
               a)
        else None)
      args
  in
  joins (lamt :: lam_taints)

(* ------------------------------------------------------------------ *)

let eval_function hooks ~reporting (fn : fn_info) =
  let st =
    { hooks; stores = Hashtbl.create 8; psinks = []; changed = false; report = false }
  in
  let nparams = List.length fn.params in
  (* A trailing [= function cases] body is one more (anonymous)
     parameter, matched immediately. *)
  let trailing_cases =
    match (strip_fun fn.body).pexp_desc with Pexp_function cases -> Some cases | _ -> None
  in
  let param_taint i = if List.mem i fn.secret_params then secret else param i in
  let bind_params () =
    List.fold_left
      (fun (i, env) (_, pat) -> (i + 1, bind_pattern env pat (param_taint i)))
      (0, Smap.empty) fn.params
    |> snd
  in
  let eval_body () =
    let env = bind_params () in
    match trailing_cases with
    | Some cases ->
        let discriminates =
          List.length cases > 1
          || List.exists
               (fun (c : Parsetree.case) -> refutable c.pc_lhs || c.pc_guard <> None)
               cases
        in
        (match cases with
        | c :: _ when discriminates ->
            sink_here st c.pc_lhs.ppat_loc Branch (param_taint nparams) ~ctx:None
        | _ -> ());
        eval_cases st env cases (param_taint nparams)
    | None -> eval st env fn.body
  in
  (* Inner fixpoint over local mutable stores; report only once stable. *)
  let rec run n =
    st.changed <- false;
    st.psinks <- [];
    let res = eval_body () in
    if st.changed && n < 4 then run (n + 1) else res
  in
  let result = run 0 in
  let result =
    if reporting then begin
      st.report <- true;
      st.psinks <- [];
      let r = eval_body () in
      st.report <- false;
      r
    end
    else result
  in
  let arity, labels =
    match trailing_cases with
    | Some _ -> (nparams + 1, List.map fst fn.params @ [ "" ])
    | None -> (nparams, List.map fst fn.params)
  in
  { arity; labels; result; sinks = List.sort_uniq compare st.psinks }
