(** The secret-flow lattice and abstract evaluator behind rule R11
    ([secret-flow], {!Callgraph}).

    A taint value abstracts what a runtime value may derive from: the
    [secret] bit says "derives from a [\@secret] source", and [deps]
    names the enclosing function's parameters that flow into it.  The
    two components make one summary-based interprocedural analysis: a
    function body is evaluated once with each parameter bound to its
    own symbolic {!param} taint, producing a {!summary} that callers
    instantiate with their argument taints (see DESIGN.md §16).

    Lengths are public by design: the leakage profile
    [L(DB) = {Size(DB), FD(DB)}] already discloses every size, so
    [String.length]-shaped builtins return {!public} and the analysis
    does not flag branches on them. *)

type t
(** An abstract taint: secret bit + set of parameter dependencies. *)

val public : t
val secret : t

val param : int -> t
(** The symbolic taint of the [i]-th parameter of the function under
    analysis. *)

val join : t -> t -> t
val joins : t list -> t
val is_secret : t -> bool
val equal : t -> t -> bool

(** Sink classes of the obliviousness contract: places where a
    secret-derived value would make the execution trace (or an
    observable output) depend on plaintext, key material, or stash
    content. *)
type sink = Branch | Index | Alloc | Loop_bound | Output

val sink_tag : sink -> string
(** Stable finding tag: ["branch"], ["index"], ["alloc"],
    ["loop-bound"], ["output"]. *)

val sink_doc : sink -> string
(** Human phrase for messages, e.g. ["conditional control flow"]. *)

type summary = {
  arity : int;
  labels : string list;  (** per-parameter label name, [""] if unlabeled *)
  result : t;  (** result taint in terms of {!param} symbols *)
  sinks : (int * sink) list;  (** parameters that reach a sink in the body *)
}

val summary_equal : summary -> summary -> bool
val bottom_summary : arity:int -> labels:string list -> summary

val summary_force_secret : summary -> summary
(** [\@secret] on the declaration: the result is secret whatever the
    body computes. *)

val summary_declassify : summary -> summary
(** [\@lint.declassify]: the function is an audited boundary — callers
    see a public result and no parameter sinks. *)

(** What a call site knows about its callee. *)
type callee = { cname : string; csummary : summary }

val builtin : string -> int -> callee option
(** [builtin name nargs] — summary for a stdlib function, keyed on the
    normalised dotted path (["Bytes.get"]).  Encodes the sink positions
    of container indexing/allocation, the public-length rule, and plain
    argument-to-result propagation.  [None] for unknown functions. *)

type hooks = {
  resolve : Longident.t -> int -> callee option;
      (** [resolve lid nargs] — project-level resolution: tree-wide
          function table, sanitizer and output prefixes, then
          {!builtin}. *)
  secret_label : string -> bool;
      (** Is this record label declared [\@secret] anywhere in the
          tree?  Reads of such fields are secret; record literals drop
          their taint (re-acquired at every read). *)
  emit : Location.t -> tag:string -> string -> unit;
      (** Report a finding (only called when evaluating with
          [~reporting:true]). *)
}

type fn_info = {
  params : (string * Parsetree.pattern) list;  (** (label, pattern) *)
  body : Parsetree.expression;
  secret_params : int list;  (** positions forced secret by [\@secret] *)
}

val eval_function : hooks -> reporting:bool -> fn_info -> summary
(** Abstractly evaluate one function body.  Mutable local stores
    (refs, [Bytes.set], [Hashtbl.replace] on let-bound containers) are
    tracked flow-insensitively by re-evaluating to an inner fixpoint;
    findings are emitted only on the final pass and only when
    [reporting]. *)

val has_attr : string -> Parsetree.attributes -> bool
(** [has_attr name attrs] — does an attribute named [name] (or
    ["lint." ^ name]) appear? *)

val declassify_reason : Parsetree.attributes -> (Location.t * string option) option
(** The [[\@lint.declassify]] attribute, if present, with its
    justification string ([None] when the payload is missing or not a
    string literal — itself a finding, tag [declassify-missing-reason]). *)
