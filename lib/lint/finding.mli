(** A single lint finding, reported as [file:line:col [rule-id] message]. *)

type t = {
  path : string;  (** tree-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler prints them *)
  rule : string;  (** stable rule name, e.g. ["no-unsafe-casts"] *)
  tag : string;  (** sub-check within the rule, [""] if none *)
  msg : string;
}

val v : path:string -> line:int -> col:int -> rule:string -> ?tag:string -> string -> t

(** Position taken from the location's start. *)
val of_loc : path:string -> rule:string -> ?tag:string -> Location.t -> string -> t

(** Orders by (path, line, col, rule, msg) — the emission order of [fdlint]. *)
val compare : t -> t -> int

val to_string : t -> string

(** One-line JSON object with exactly the keys
    [path, line, col, rule, tag, msg] (in that order), strings escaped
    per RFC 8259 — the [fdlint --format json] machine surface. *)
val to_json : t -> string
