let parse_error_rule = "parse-error"

(* ------------------------------------------------------------------ *)
(* Scope / allow / suppression filtering                               *)

let enabled (config : Config.t) rules =
  List.filter
    (fun r -> not (List.exists (fun spec -> Rule.spec_matches spec r) config.disabled))
    rules

let config_entries rule entries =
  List.filter_map
    (fun (spec, tag, prefix) -> if Rule.spec_matches spec rule then Some (tag, prefix) else None)
    entries

let in_scope (config : Config.t) (rule : Rule.t) ~tag ~path =
  let entries = rule.scope @ config_entries rule config.scopes in
  let matching = List.filter (fun (t, _) -> t = "" || String.equal t tag) entries in
  matching = [] || List.exists (fun (_, p) -> Rule.path_matches ~prefix:p path) matching

let allowed (config : Config.t) (rule : Rule.t) ~tag ~path =
  let entries = rule.allow @ config_entries rule config.allows in
  List.exists
    (fun (t, p) -> (t = "" || String.equal t tag) && Rule.path_matches ~prefix:p path)
    entries

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let parse_ast ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  if Filename.check_suffix path ".mli" then Rule.Intf (Parse.interface lexbuf)
  else Rule.Impl (Parse.implementation lexbuf)

let parse_failure ~path exn =
  let loc, detail =
    match exn with
    | Syntaxerr.Error e -> (
        ( Syntaxerr.location_of_error e,
          match Location.error_of_exn exn with
          | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
          | Some `Already_displayed | None -> Printexc.to_string exn ))
    | Lexer.Error (_, loc) -> (loc, Printexc.to_string exn)
    | _ -> (Location.in_file path, Printexc.to_string exn)
  in
  let detail = String.map (function '\n' -> ' ' | c -> c) detail in
  Finding.of_loc ~path ~rule:parse_error_rule loc detail

(* ------------------------------------------------------------------ *)
(* Per-file lint                                                       *)

let ast_findings config rules ~path ast =
  let raw = ref [] in
  List.iter
    (fun (r : Rule.t) ->
      match r.check with
      | Rule.Tree _ -> ()
      | Rule.Ast f ->
          let report loc ?(tag = "") msg = raw := (loc, r, tag, msg) :: !raw in
          f { Rule.path; ast; report })
    rules;
  let regions = Suppress.collect ast in
  List.filter_map
    (fun ((loc : Location.t), rule, tag, msg) ->
      if
        in_scope config rule ~tag ~path
        && (not (allowed config rule ~tag ~path))
        && not (Suppress.suppressed regions rule ~tag ~off:loc.loc_start.pos_cnum)
      then Some (Finding.of_loc ~path ~rule:rule.Rule.name ~tag loc msg)
      else None)
    !raw

let lint_string ?(config = Config.default) ?(rules = Rules.all) ~path content =
  match parse_ast ~path content with
  | ast -> ast_findings config (enabled config rules) ~path ast |> List.sort_uniq Finding.compare
  | exception exn -> [ parse_failure ~path exn ]

(* ------------------------------------------------------------------ *)
(* Tree lint                                                           *)

(* Run the Tree rules over an already-parsed tree.  Located findings go
   through the owning file's [@lint.allow] regions (collected lazily per
   path), so tree rules suppress exactly like per-file ones. *)
let tree_findings config rules ~files ~sources ~regions_for =
  let acc = ref [] in
  List.iter
    (fun (r : Rule.t) ->
      match r.check with
      | Rule.Ast _ -> ()
      | Rule.Tree f ->
          let report ~path ?loc ?(tag = "") msg =
            if in_scope config r ~tag ~path && not (allowed config r ~tag ~path) then
              match loc with
              | None -> acc := Finding.v ~path ~line:1 ~col:0 ~rule:r.Rule.name ~tag msg :: !acc
              | Some (l : Location.t) ->
                  if
                    not
                      (Suppress.suppressed (regions_for path) r ~tag ~off:l.loc_start.pos_cnum)
                  then acc := Finding.of_loc ~path ~rule:r.Rule.name ~tag l msg :: !acc
          in
          f ~files ~sources ~report)
    rules;
  !acc

(* Shared tail of lint_tree / lint_vtree: [docs] pairs each path with
   its content ([Error] = unreadable).  Every file is parsed exactly
   once and the AST shared between per-file rules, tree rules and
   suppression-region lookup. *)
let lint_docs config rules docs =
  let parsed =
    List.map
      (fun (path, content) ->
        match content with
        | Error e -> (path, Error (Finding.v ~path ~line:1 ~col:0 ~rule:parse_error_rule e))
        | Ok content -> (
            match parse_ast ~path content with
            | ast -> (path, Ok ast)
            | exception exn -> (path, Error (parse_failure ~path exn))))
      docs
  in
  let per_file =
    List.concat_map
      (fun (path, r) ->
        match r with
        | Ok ast -> ast_findings config rules ~path ast
        | Error f -> [ f ])
      parsed
  in
  let sources =
    lazy
      (List.filter_map
         (fun (path, r) ->
           match r with
           | Ok ast -> Some { Rule.src_path = path; src_ast = ast }
           | Error _ -> None)
         parsed)
  in
  let regions_cache = Hashtbl.create 16 in
  let regions_for path =
    match Hashtbl.find_opt regions_cache path with
    | Some r -> r
    | None ->
        let r =
          match List.assoc_opt path parsed with
          | Some (Ok ast) -> Suppress.collect ast
          | Some (Error _) | None -> []
        in
        Hashtbl.replace regions_cache path r;
        r
  in
  let files = List.map fst docs in
  let tree = tree_findings config rules ~files ~sources ~regions_for in
  (List.sort_uniq Finding.compare (per_file @ tree), List.length files)

let list_files ~root ~excludes =
  let acc = ref [] in
  let rec go rel abs =
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.iter
      (fun name ->
        if String.length name > 0 && name.[0] <> '.' && name.[0] <> '_' then begin
          let rel' = if rel = "" then name else rel ^ "/" ^ name in
          let abs' = Filename.concat abs name in
          if not (List.exists (fun p -> Rule.path_matches ~prefix:p rel') excludes) then
            if Sys.is_directory abs' then go rel' abs'
            else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli" then
              acc := rel' :: !acc
        end)
      entries
  in
  go "" root;
  List.rev !acc

let lint_file ?(config = Config.default) ?(rules = Rules.all) ~root path =
  let abs = Filename.concat root path in
  match In_channel.with_open_bin abs In_channel.input_all with
  | content -> lint_string ~config ~rules ~path content
  | exception Sys_error e -> [ Finding.v ~path ~line:1 ~col:0 ~rule:parse_error_rule e ]

let lint_tree ?(config = Config.default) ?(rules = Rules.all) ~root () =
  let rules = enabled config rules in
  let files = list_files ~root ~excludes:config.Config.excludes in
  let docs =
    List.map
      (fun path ->
        match
          In_channel.with_open_bin (Filename.concat root path) In_channel.input_all
        with
        | content -> (path, Ok content)
        | exception Sys_error e -> (path, Error e))
      files
  in
  lint_docs config rules docs

let lint_vtree ?(config = Config.default) ?(rules = Rules.all) docs =
  let rules = enabled config rules in
  lint_docs config rules (List.map (fun (p, c) -> (p, Ok c)) docs)

(* ------------------------------------------------------------------ *)
(* Smoke                                                               *)

let smoke (r : Rule.t) =
  let fires = List.exists (fun f -> String.equal f.Finding.rule r.Rule.name) in
  match r.smoke with
  | Rule.Smoke_code { path; code } -> fires (lint_string ~rules:[ r ] ~path code)
  | Rule.Smoke_files files ->
      fires
        (tree_findings Config.default [ r ] ~files ~sources:(lazy [])
           ~regions_for:(fun _ -> []))
  | Rule.Smoke_tree docs -> fires (fst (lint_vtree ~rules:[ r ] docs))
