(** A lint rule: an id ("R1"), a stable name ("no-ambient-randomness"),
    scoping defaults, and either a per-file AST check or a whole-tree
    check (for rules about the file set itself, like mli-completeness,
    or about cross-file flows, like secret-flow). *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

(** A successfully parsed tree file, as handed to [Tree] checks. *)
type source = { src_path : string; src_ast : ast }

type ctx = {
  path : string;  (** tree-relative path of the file being linted *)
  ast : ast;
  report : Location.t -> ?tag:string -> string -> unit;
}

type tree_report = path:string -> ?loc:Location.t -> ?tag:string -> string -> unit
(** Tree-check findings carry a path and optionally a precise location;
    located findings go through the file's [[\@lint.allow]] suppression
    regions like per-file findings do. *)

type check =
  | Ast of (ctx -> unit)  (** run once per parsed file *)
  | Tree of (files:string list -> sources:source list Lazy.t -> report:tree_report -> unit)
      (** run once over the whole tree: [files] lists every linted
          path (parsed or not), [sources] the parsed ASTs (forced only
          if the rule needs them) *)

(** Built-in self-test input for [fdlint --smoke]: a snippet (with the
    virtual path that puts it in the rule's scope), a file list, or a
    virtual (path, contents) tree on which the rule must produce at
    least one finding. *)
type smoke =
  | Smoke_code of { path : string; code : string }
  | Smoke_files of string list
  | Smoke_tree of (string * string) list

type t = {
  id : string;  (** "R1".."R11" *)
  name : string;  (** the rule-id used in reports and [\@lint.allow] *)
  doc : string;
  scope : (string * string) list;
      (** (tag, path-prefix) pairs restricting where findings survive; tag
          [""] applies to every sub-check.  A tag with no entry at all is
          unrestricted. *)
  allow : (string * string) list;
      (** (tag, path-prefix) pairs where findings are dropped by default *)
  check : check;
  smoke : smoke;
}

(** [spec_matches spec t] — does a config/CLI rule spec ("R2", the rule
    name, or "*") select this rule? *)
val spec_matches : string -> t -> bool

(** Split ["R2:bytes-unsafe"] into [("R2", "bytes-unsafe")]; no colon
    means an empty (match-any) tag. *)
val split_spec : string -> string * string

(** Component-aware prefix test: ["lib/crypto/"] and ["lib/crypto"] both
    match ["lib/crypto/ct.ml"], but ["lib/cry"] does not.  The empty
    prefix matches everything. *)
val path_matches : prefix:string -> string -> bool
