type t = {
  disabled : string list;
  allows : (string * string * string) list;
  scopes : (string * string * string) list;
  excludes : string list;
}

let default = { disabled = []; allows = []; scopes = []; excludes = [] }

let strip_comment line =
  match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse content =
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' content in
  let rec go acc lineno = function
    | [] -> Ok acc
    | line :: rest -> (
        match words (strip_comment line) with
        | [] -> go acc (lineno + 1) rest
        | [ "disable"; rule ] -> go { acc with disabled = rule :: acc.disabled } (lineno + 1) rest
        | [ "enable"; rule ] ->
            go
              { acc with disabled = List.filter (fun r -> not (String.equal r rule)) acc.disabled }
              (lineno + 1) rest
        | [ "allow"; spec; prefix ] ->
            let rule, tag = Rule.split_spec spec in
            go { acc with allows = (rule, tag, prefix) :: acc.allows } (lineno + 1) rest
        | [ "scope"; spec; prefix ] ->
            let rule, tag = Rule.split_spec spec in
            go { acc with scopes = (rule, tag, prefix) :: acc.scopes } (lineno + 1) rest
        | [ "exclude"; prefix ] -> go { acc with excludes = prefix :: acc.excludes } (lineno + 1) rest
        | directive :: _ -> err lineno ("unknown or malformed directive: " ^ directive))
  in
  go default 1 lines

let load path =
  if not (Sys.file_exists path) then Ok default
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | content -> (
        match parse content with Ok c -> Ok c | Error e -> Error (path ^ ": " ^ e))
    | exception Sys_error e -> Error e
