(** Orchestration: file discovery, parsing with [compiler-libs], running
    the rule set, and filtering findings through the three suppression
    layers (built-in + config scopes, built-in + config allows, and
    per-site [[\@lint.allow]] attributes). *)

(** Rule name used for findings produced by files that fail to parse. *)
val parse_error_rule : string

(** Lint one file's content under a (possibly virtual) tree-relative
    [path] — the path determines which scoped rules apply.  Only AST
    rules run. *)
val lint_string :
  ?config:Config.t -> ?rules:Rule.t list -> path:string -> string -> Finding.t list

(** Lint the file at [root ^ "/" ^ path]. *)
val lint_file :
  ?config:Config.t -> ?rules:Rule.t list -> root:string -> string -> Finding.t list

(** All lintable files under [root] (tree-relative, sorted): [.ml]/[.mli]
    files, skipping dot- and underscore-prefixed directories ([_build],
    [.git], ...) and the config's [exclude] prefixes. *)
val list_files : root:string -> excludes:string list -> string list

(** Lint a whole tree (AST rules per file + tree rules over the parsed
    sources).  Every file is parsed once and the AST shared between the
    per-file rules, tree rules and suppression regions.  Returns the
    sorted findings and the number of files scanned. *)
val lint_tree :
  ?config:Config.t -> ?rules:Rule.t list -> root:string -> unit -> Finding.t list * int

(** Same pipeline over a virtual tree of [(path, contents)] pairs — no
    filesystem involved.  Backs [Smoke_tree] self-tests and suite
    coverage of tree rules. *)
val lint_vtree :
  ?config:Config.t -> ?rules:Rule.t list -> (string * string) list -> Finding.t list * int

(** Run a rule's built-in positive self-test; [true] iff the rule
    fires. *)
val smoke : Rule.t -> bool
