type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type source = { src_path : string; src_ast : ast }

type ctx = {
  path : string;
  ast : ast;
  report : Location.t -> ?tag:string -> string -> unit;
}

type tree_report = path:string -> ?loc:Location.t -> ?tag:string -> string -> unit

type check =
  | Ast of (ctx -> unit)
  | Tree of (files:string list -> sources:source list Lazy.t -> report:tree_report -> unit)

type smoke =
  | Smoke_code of { path : string; code : string }
  | Smoke_files of string list
  | Smoke_tree of (string * string) list

type t = {
  id : string;
  name : string;
  doc : string;
  scope : (string * string) list;
  allow : (string * string) list;
  check : check;
  smoke : smoke;
}

(* "R2", "no-unsafe-casts" and "*" all select a rule; a ":tag" suffix
   narrows a directive to one sub-check of it. *)
let spec_matches spec t =
  spec = "*" || String.equal spec t.id || String.equal spec t.name

let split_spec spec =
  match String.index_opt spec ':' with
  | None -> (spec, "")
  | Some i -> (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))

(* [prefix] matches [path] on whole '/'-separated components, so
   "lib/cry" does not accidentally cover "lib/crypto/". *)
let path_matches ~prefix path =
  let lp = String.length prefix and l = String.length path in
  lp = 0
  || (lp <= l
      && String.equal prefix (String.sub path 0 lp)
      && (prefix.[lp - 1] = '/' || lp = l || path.[lp] = '/'))
