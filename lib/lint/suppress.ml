type region = { specs : string list; start_off : int; end_off : int }

let split_specs s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun w -> w <> "")

let payload_specs (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some (split_specs s)
  | _ -> None

let is_allow (attr : Parsetree.attribute) = String.equal attr.attr_name.txt "lint.allow"

let of_attrs ~(loc : Location.t) attrs acc =
  List.fold_left
    (fun acc attr ->
      if is_allow attr then
        match payload_specs attr with
        | Some specs ->
            { specs; start_off = loc.loc_start.pos_cnum; end_off = loc.loc_end.pos_cnum } :: acc
        | None -> acc
      else acc)
    acc attrs

let whole_file attrs acc =
  List.fold_left
    (fun acc attr ->
      if is_allow attr then
        match payload_specs attr with
        | Some specs -> { specs; start_off = 0; end_off = max_int } :: acc
        | None -> acc
      else acc)
    acc attrs

let collect ast =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          acc := of_attrs ~loc:e.Parsetree.pexp_loc e.pexp_attributes !acc;
          default.expr self e);
      value_binding =
        (fun self vb ->
          acc := of_attrs ~loc:vb.Parsetree.pvb_loc vb.pvb_attributes !acc;
          default.value_binding self vb);
      module_binding =
        (fun self mb ->
          acc := of_attrs ~loc:mb.Parsetree.pmb_loc mb.pmb_attributes !acc;
          default.module_binding self mb);
      structure_item =
        (fun self si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_attribute attr -> acc := whole_file [ attr ] !acc
          | _ -> ());
          default.structure_item self si);
      signature_item =
        (fun self si ->
          (match si.Parsetree.psig_desc with
          | Psig_attribute attr -> acc := whole_file [ attr ] !acc
          | _ -> ());
          default.signature_item self si);
    }
  in
  (match ast with
  | Rule.Impl str -> it.structure it str
  | Rule.Intf sg -> it.signature it sg);
  !acc

let suppressed regions (rule : Rule.t) ~tag ~off =
  let spec_hits spec =
    let r, t = Rule.split_spec spec in
    Rule.spec_matches r rule && (t = "" || String.equal t tag)
  in
  List.exists
    (fun { specs; start_off; end_off } ->
      off >= start_off && off <= end_off && List.exists spec_hits specs)
    regions
