(** The project rule set.  See DESIGN.md §11 for each rule's rationale
    against the leakage model [L(DB) = {Size(DB), FD(DB)}], and §16 for
    the R11 secret-flow analysis. *)

(** In registry order (first id .. last id = {!span}). *)
val all : Rule.t list

(** The registry's id range, derived from {!all} (e.g. ["R1..R11"]) so
    printed docs cannot rot when a rule is added. *)
val span : string

(** Look a rule up by id ("R3") or name ("mli-completeness"). *)
val find : string -> Rule.t option
