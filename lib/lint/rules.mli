(** The project rule set (R1..R9).  See DESIGN.md §11 for each rule's
    rationale against the leakage model [L(DB) = {Size(DB), FD(DB)}]. *)

(** In registry order R1..R9. *)
val all : Rule.t list

(** Look a rule up by id ("R3") or name ("mli-completeness"). *)
val find : string -> Rule.t option
