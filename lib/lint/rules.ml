(* The project's rule set (the registry's range is exported as [span]).
   R1..R10 are purely syntactic (Parsetree only, no typing), so rules
   about *values* — e.g. "is this comparison on key material?" — are
   name heuristics; R11 is the interprocedural secret-flow analysis
   (Taint / Callgraph).  DESIGN.md §11 documents each rule's rationale
   and the limits of its detector, §16 the R11 lattice. *)

let rec lid_str = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_str l ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_str a ^ "(" ^ lid_str b ^ ")"

let last_comp = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, b) -> ( match b with Longident.Lident s -> s | _ -> "")

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal prefix (String.sub s 0 (String.length prefix))

(* Normalise an ident path: explicit [Stdlib.] qualification must not
   dodge a rule. *)
let norm s = if starts_with ~prefix:"Stdlib." s then String.sub s 7 (String.length s - 7) else s

(* Walk every expression (and module expression) of a file. *)
let walk (ctx : Rule.ctx) ?(module_expr = fun _ -> ()) f =
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          f e;
          default.expr self e);
      module_expr =
        (fun self m ->
          module_expr m;
          default.module_expr self m);
    }
  in
  match ctx.ast with Rule.Impl str -> it.structure it str | Rule.Intf sg -> it.signature it sg

let expr_mentions pred e =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } -> if pred (norm (lid_str txt)) then found := true
          | _ -> ());
          default.expr self e);
    }
  in
  it.expr it e;
  !found

let contains_sub ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.equal sub (String.sub s i lb) || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* R1 — no-ambient-randomness                                          *)

let seedish = [ "create"; "init"; "make"; "seed"; "self_init"; "reseed" ]
let time_fn s = String.equal s "Unix.time" || String.equal s "Unix.gettimeofday"

let r1_check ctx =
  walk ctx
    ~module_expr:(fun m ->
      match m.Parsetree.pmod_desc with
      | Pmod_ident { txt; loc } when String.equal (norm (lid_str txt)) "Random" ->
          ctx.Rule.report loc "reference to ambient Stdlib.Random; use the seeded Crypto.Rng"
      | _ -> ())
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when starts_with ~prefix:"Random." (norm (lid_str txt)) ->
          ctx.Rule.report e.pexp_loc
            (Printf.sprintf "ambient randomness via %s; use the seeded Crypto.Rng" (lid_str txt))
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when List.mem (last_comp txt) seedish
             && List.exists (fun (_, a) -> expr_mentions time_fn a) args ->
          ctx.Rule.report e.pexp_loc ~tag:"time-seed"
            (Printf.sprintf "%s seeded from wall-clock time; thread an explicit seed instead"
               (lid_str txt))
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R2 — no-unsafe-casts                                                *)

let r2_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          let s = norm (lid_str txt) in
          if String.equal s "Obj.magic" then
            ctx.Rule.report e.pexp_loc ~tag:"obj-magic" "Obj.magic defeats the type system"
          else if starts_with ~prefix:"Marshal." s then
            ctx.Rule.report e.pexp_loc ~tag:"marshal"
              (lid_str txt ^ ": Marshal is unsafe on untrusted input; use the wire codec")
          else
            match starts_with ~prefix:"Bytes.unsafe_" s || starts_with ~prefix:"String.unsafe_" s with
            | true ->
                ctx.Rule.report e.pexp_loc ~tag:"bytes-unsafe"
                  (lid_str txt ^ ": unchecked access outside the allowlist")
            | false -> ())
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R3 — mli-completeness (tree rule)                                   *)

let r3_check ~files ~sources:_ ~(report : Rule.tree_report) =
  let have = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace have p ()) files;
  List.iter
    (fun p ->
      if
        starts_with ~prefix:"lib/" p
        && Filename.check_suffix p ".ml"
        && not (Filename.check_suffix p "_intf.ml")
        && not (Hashtbl.mem have (p ^ "i"))
      then report ~path:p (Printf.sprintf "missing interface %si" p))
    files

(* ------------------------------------------------------------------ *)
(* R4 — no-raw-output-in-lib                                           *)

let raw_output =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "print_string";
    "print_bytes";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_string";
    "prerr_bytes";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
  ]

let r4_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when List.mem (norm (lid_str txt)) raw_output ->
          ctx.Rule.report e.pexp_loc
            (lid_str txt ^ " in lib/: route diagnostics through Core.Log")
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R5 — eintr-discipline                                               *)

let raw_syscalls =
  [ "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.accept"; "Unix.select"; "Unix.connect" ]

let r5_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when List.mem (norm (lid_str txt)) raw_syscalls ->
          ctx.Rule.report e.pexp_loc
            (lid_str txt ^ ": raw syscall in lib/service; use the daemon's *_retry wrappers")
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R6 — constant-time-crypto                                           *)

let variable_time_eq = [ "String.equal"; "Bytes.equal"; "String.compare"; "Bytes.compare" ]
let poly_ops = [ "="; "<>"; "compare" ]
let secretish = [ "key"; "secret"; "cipher"; "digest"; "mac"; "tag" ]

let rec direct_name e =
  match e.Parsetree.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last_comp txt)
  | Pexp_field (_, { txt; _ }) -> Some (last_comp txt)
  | Pexp_constraint (e, _) -> direct_name e
  | _ -> None

let secret_named e =
  match direct_name e with
  | None -> false
  | Some n ->
      let n = String.lowercase_ascii n in
      List.exists (fun sub -> contains_sub ~sub n) secretish

let r6_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when List.mem (norm (lid_str txt)) variable_time_eq ->
          ctx.Rule.report e.pexp_loc
            (lid_str txt ^ " in lib/crypto compares in variable time; use Crypto.Ct.equal")
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, ([ (_, a); (_, b) ] as _args))
        when List.mem (norm (lid_str txt)) poly_ops && (secret_named a || secret_named b) ->
          ctx.Rule.report e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on secret-named operand leaks via timing; use Crypto.Ct.equal"
               (lid_str txt))
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R7 — exception-hygiene                                              *)

let r7_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
        when String.equal (norm (lid_str txt)) "failwith" ->
          ctx.Rule.report e.pexp_loc ~tag:"bare-failure"
            "bare failwith in a codec path; raise a typed error (e.g. Wire.Protocol_error)"
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = fn; _ }; _ },
            [ (_, { pexp_desc = Pexp_construct ({ txt = exn; _ }, _); _ }) ] )
        when String.equal (norm (lid_str fn)) "raise" && String.equal (norm (lid_str exn)) "Failure"
        ->
          ctx.Rule.report e.pexp_loc ~tag:"bare-failure"
            "raise Failure in a codec path; raise a typed error (e.g. Wire.Protocol_error)"
      | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
          ctx.Rule.report e.pexp_loc ~tag:"bare-failure"
            "assert false in a codec path; raise a typed error or make the state impossible"
      | Pexp_try (_, cases) ->
          List.iter
            (fun (c : Parsetree.case) ->
              match (c.pc_lhs.ppat_desc, c.pc_guard) with
              | Ppat_any, None ->
                  ctx.Rule.report c.pc_lhs.ppat_loc ~tag:"swallow"
                    "catch-all 'with _ ->' silently swallows exceptions; match specific ones"
              | _ -> ())
            cases
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R8 — domain-hygiene                                                 *)

let r8_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when String.equal (norm (lid_str txt)) "Domain.spawn" ->
          ctx.Rule.report e.pexp_loc
            "Domain.spawn outside the sanctioned parallel runtimes; oblivious client-side \
             code must stay sequential (see .fdlint for the allowed scopes)"
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R9 — durability-hygiene                                             *)

let durable_write_fns =
  [
    "open_out";
    "open_out_bin";
    "open_out_gen";
    "Out_channel.open_bin";
    "Out_channel.open_text";
    "Out_channel.open_gen";
    "Out_channel.with_open_bin";
    "Out_channel.with_open_text";
    "Out_channel.with_open_gen";
    "Unix.openfile";
    "Unix.rename";
    "Sys.rename";
  ]

let r9_check ctx =
  walk ctx (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } when List.mem (norm (lid_str txt)) durable_write_fns ->
          ctx.Rule.report e.pexp_loc
            (lid_str txt
           ^ ": direct file creation/rename outside Store.Fsio; durable state must go \
              through the fsync'd tmp-rename helpers")
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* R10 — event-loop-hygiene                                            *)

(* Unlike the expression-only rules above, this one also inspects
   structure/signature items: an `external` is a [Pstr_primitive] (or a
   [Psig_value] with a non-empty [pval_prim]), which the expression
   iterator never sees. *)
let r10_check ctx =
  let prim loc (vd : Parsetree.value_description) =
    if List.exists (starts_with ~prefix:"sfdd_ev_") vd.pval_prim then
      ctx.Rule.report loc ~tag:"external"
        (Printf.sprintf
           "external %s rebinds the evloop C stubs; readiness syscalls are Service.Evloop's \
            private surface"
           vd.pval_name.txt)
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } when String.equal (norm (lid_str txt)) "Unix.select" ->
              ctx.Rule.report e.pexp_loc
                "raw Unix.select outside Service.Evloop; use the Evloop readiness API so \
                 backend choice stays in one place"
          | _ -> ());
          default.expr self e);
      structure_item =
        (fun self si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_primitive vd -> prim si.pstr_loc vd
          | _ -> ());
          default.structure_item self si);
      signature_item =
        (fun self si ->
          (match si.Parsetree.psig_desc with
          | Psig_value vd when vd.pval_prim <> [] -> prim si.psig_loc vd
          | _ -> ());
          default.signature_item self si);
    }
  in
  match ctx.ast with Rule.Impl str -> it.structure it str | Rule.Intf sg -> it.signature it sg

(* ------------------------------------------------------------------ *)
(* R11 — secret-flow (tree rule)                                       *)

let r11_check ~files:_ ~sources ~report = Callgraph.check (Lazy.force sources) ~report

(* ------------------------------------------------------------------ *)

let all : Rule.t list =
  [
    {
      id = "R1";
      name = "no-ambient-randomness";
      doc =
        "Stdlib.Random and wall-clock seeding are forbidden: all randomness flows from the \
         explicitly seeded Crypto.Rng so runs are reproducible and ORAM position maps are not \
         seeded from guessable entropy.";
      scope = [];
      allow = [ ("", "lib/crypto/rng.ml"); ("", "lib/datasets/") ];
      check = Ast r1_check;
      smoke = Smoke_code { path = "lib/core/smoke.ml"; code = "let d6 () = Random.int 6\n" };
    };
    {
      id = "R2";
      name = "no-unsafe-casts";
      doc =
        "Obj.magic, Marshal and Bytes/String.unsafe_* outside the audited allowlist: unsafe \
         casts can bypass both the type system and the oblivious access discipline.";
      scope = [];
      allow = [];
      check = Ast r2_check;
      smoke = Smoke_code { path = "lib/oram/smoke.ml"; code = "let f x = Obj.magic x\n" };
    };
    {
      id = "R3";
      name = "mli-completeness";
      doc =
        "Every lib/**/*.ml must have a sibling .mli (modules named *_intf.ml are exempt): \
         unsealed modules leak representation details that the leakage arguments rely on \
         being private.";
      scope = [];
      allow = [];
      check = Tree r3_check;
      smoke = Smoke_files [ "lib/foo/orphan.ml" ];
    };
    {
      id = "R4";
      name = "no-raw-output-in-lib";
      doc =
        "Printf.printf / print_* / prerr_* inside lib/ must go through Core.Log so output is \
         levelled, capturable and silenced in library use.";
      scope = [ ("", "lib/") ];
      allow = [];
      check = Ast r4_check;
      smoke =
        Smoke_code { path = "lib/fdbase/smoke.ml"; code = "let () = print_endline \"hi\"\n" };
    };
    {
      id = "R5";
      name = "eintr-discipline";
      doc =
        "Raw Unix.read/write/accept/select/connect in lib/service must flow through the \
         daemon's EINTR-retrying wrappers; a stray EINTR must never kill the event loop.";
      scope = [ ("", "lib/service/") ];
      allow = [];
      check = Ast r5_check;
      smoke =
        Smoke_code { path = "lib/service/smoke.ml"; code = "let f fd b = Unix.read fd b 0 1\n" };
    };
    {
      id = "R6";
      name = "constant-time-crypto";
      doc =
        "String/Bytes equality and polymorphic compare on secret-named operands in lib/crypto \
         terminate on the first differing byte, leaking positions through timing; use \
         Crypto.Ct.equal.";
      scope = [ ("", "lib/crypto/") ];
      allow = [];
      check = Ast r6_check;
      smoke = Smoke_code { path = "lib/crypto/smoke.ml"; code = "let ok key k2 = key = k2\n" };
    };
    {
      id = "R7";
      name = "exception-hygiene";
      doc =
        "Codec paths must fail with typed errors (bare failwith/Failure/assert false there is \
         a protocol bug waiting to crash a server), and catch-all 'try ... with _ ->' that \
         swallows exceptions is forbidden everywhere.";
      scope =
        [
          ("bare-failure", "lib/servsim/wire.ml");
          ("bare-failure", "lib/service/frame_decoder.ml");
          ("bare-failure", "lib/service/conn.ml");
          ("bare-failure", "lib/relation/codec.ml");
        ];
      allow = [];
      check = Ast r7_check;
      smoke =
        Smoke_code { path = "lib/servsim/wire.ml"; code = "let f () = failwith \"boom\"\n" };
    };
    {
      id = "R8";
      name = "domain-hygiene";
      doc =
        "Domain.spawn anywhere except the sanctioned parallel runtimes (the sharded service \
         daemon and the oblivious-sort worker pool, allowed via the checked-in .fdlint): \
         accidental parallelism in client-side oblivious code can reorder the access trace \
         and silently break digest reproducibility.";
      scope = [];
      allow = [];
      check = Ast r8_check;
      smoke =
        Smoke_code { path = "lib/core/smoke.ml"; code = "let start f = Domain.spawn f\n" };
    };
    {
      id = "R9";
      name = "durability-hygiene";
      doc =
        "Opening files for writing or renaming them anywhere in lib/ outside Store.Fsio \
         bypasses the fsync-then-rename discipline the crash-recovery story rests on: a \
         bare open_out/Unix.rename can leave torn or unsynced state that recovery then \
         trusts.  lib/store/fsio.ml is the one audited site (lib/relation/csv.ml's \
         user-facing CSV export is also allowed — exported reports are not durable state).";
      scope = [ ("", "lib/") ];
      allow = [ ("", "lib/store/fsio.ml"); ("", "lib/relation/csv.ml") ];
      check = Ast r9_check;
      smoke = Smoke_code { path = "lib/store/tenant.ml"; code = "let f p = open_out_bin p\n" };
    };
    {
      id = "R10";
      name = "event-loop-hygiene";
      doc =
        "Raw Unix.select and the sfdd_ev_* poll/epoll externals are the readiness layer's \
         private surface: every other module goes through Service.Evloop, so backend \
         semantics — level-triggering, the select FD_SETSIZE wall, EINTR handling — are \
         decided in exactly one audited place.  lib/service/evloop.ml is the sole allowed \
         site (via the checked-in .fdlint).";
      scope = [];
      allow = [];
      check = Ast r10_check;
      smoke =
        Smoke_code
          { path = "lib/core/smoke.ml"; code = "let wait fds = Unix.select fds [] [] 0.1\n" };
    };
    {
      id = "R11";
      name = "secret-flow";
      doc =
        "Interprocedural taint analysis of the obliviousness contract: values marked \
         [@secret] (decrypted cells, AES key schedules, stash plaintext) must not reach a \
         branch, a memory index, an allocation size, a loop bound, or wire/disk/log output \
         unless laundered through Crypto.Ct or explicitly audited with [@lint.declassify \
         \"why\"].  The leakage profile L(DB) = {Size(DB), FD(DB)} already discloses sizes, \
         so lengths are public; everything else a secret influences would widen the \
         profile.";
      scope =
        [
          ("", "lib/crypto/");
          ("", "lib/oram/");
          ("", "lib/osort/");
          ("", "lib/core/");
          ("", "lib/servsim/");
        ];
      allow = [];
      check = Tree r11_check;
      smoke =
        Smoke_tree
          [
            ("lib/oram/dec.mli", "val open_cell : string -> string [@@secret]\n");
            ("lib/oram/dec.ml", "let open_cell c = c\n");
            ("lib/oram/use.ml", "let f c = if Dec.open_cell c = \"x\" then 1 else 0\n");
          ];
    };
  ]

let span =
  match all with
  | [] -> ""
  | first :: _ ->
      let last = List.fold_left (fun _ r -> r) first all in
      first.Rule.id ^ ".." ^ last.Rule.id

let find spec = List.find_opt (Rule.spec_matches spec) all
