(** Tree-wide call graph for rule R11 ([secret-flow]).

    Builds a function table over every parsed file — top-level and
    nested-module bindings, keyed by qualified name
    (["Crypto.Cell_cipher.decrypt"]) — collects [[\@secret]] /
    [[\@lint.declassify]] annotations from interfaces and
    implementations, and runs {!Taint.eval_function} over all bodies to
    an interprocedural fixpoint before a final reporting pass.

    Name resolution is purely syntactic: a use site generates candidate
    qualified names from the enclosing modules, the library root
    (wrapped libraries make [Wire.put] mean [Servsim.Wire.put] inside
    [lib/servsim/]), file-level [open]s and [module X = Y] aliases.
    Candidates hit, in order: the declared trust boundaries
    ([Crypto.Ct] sanitizes, [Wire]/[Trace]/[Fsio]/[Log]/[Remote] are
    output sinks), the tree function table, then {!Taint.builtin}. *)

val check : Rule.source list -> report:Rule.tree_report -> unit
(** Run the whole analysis and emit findings.  Scope filtering (which
    paths' findings survive) is the driver's job, but every file always
    contributes summaries. *)
