(** The checked-in [.fdlint] configuration.

    Line-based; [#] starts a comment.  Directives:
    {v
    disable <rule>                  turn a rule off everywhere
    enable <rule>                   undo an earlier disable
    allow <rule>[:<tag>] <prefix>   drop the rule's findings under a path
    scope <rule>[:<tag>] <prefix>   additionally restrict where a
                                    (sub-)check applies (additive with the
                                    rule's built-in scope)
    exclude <prefix>                do not lint files under a path at all
    v}
    [<rule>] is an id ("R2"), a rule name ("no-unsafe-casts") or ["*"];
    prefixes match whole path components relative to the linted root. *)

type t = {
  disabled : string list;
  allows : (string * string * string) list;  (** rule spec, tag ("" = any), prefix *)
  scopes : (string * string * string) list;  (** rule spec, tag ("" = any), prefix *)
  excludes : string list;
}

val default : t

(** Parse the content of a config file. *)
val parse : string -> (t, string) result

(** Read and parse [path]; a missing file yields {!default}. *)
val load : string -> (t, string) result
