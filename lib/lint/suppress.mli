(** Per-site suppressions: a [[\@lint.allow "rule-id"]] attribute on an
    expression, a [[\@\@lint.allow "rule-id"]] on a value or module
    binding, or a floating [[\@\@\@lint.allow "rule-id"]] (whole file)
    silences the named rules inside the attributed node.  The payload may
    name several rules, separated by spaces or commas, each optionally
    narrowed to a sub-check with [":tag"]. *)

type region = { specs : string list; start_off : int; end_off : int }

(** All suppression regions of a parsed file, as byte-offset ranges. *)
val collect : Rule.ast -> region list

(** Is a finding of [rule]/[tag] whose location starts at byte offset
    [off] covered by one of [regions]? *)
val suppressed : region list -> Rule.t -> tag:string -> off:int -> bool
