(* Tree-wide call graph and interprocedural fixpoint for R11.  The
   taint lattice and per-function evaluator live in Taint; this module
   owns name resolution, annotation collection and iteration order. *)

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let rec lid_str = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_str l ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_str a ^ "(" ^ lid_str b ^ ")"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal prefix (String.sub s 0 (String.length prefix))

let norm s = if starts_with ~prefix:"Stdlib." s then String.sub s 7 (String.length s - 7) else s

let lbl_name = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled s | Asttypes.Optional s -> s

(* Module part of a qualified name: "Servsim.Wire.put_u32" -> "Servsim.Wire". *)
let module_part q =
  match String.rindex_opt q '.' with Some i -> String.sub q 0 i | None -> ""

(* The fully qualified module a file defines, and its wrapped-library
   root: "lib/crypto/ct.ml" -> ("Crypto.Ct", Some "Crypto");
   "bin/fdlint.ml" -> ("Fdlint", None). *)
let module_path path =
  let m = String.capitalize_ascii (Filename.remove_extension (Filename.basename path)) in
  match String.split_on_char '/' path with
  | "lib" :: libdir :: _ :: _ ->
      let root = String.capitalize_ascii libdir in
      if String.equal m root then (root, Some root) else ((root ^ "." ^ m), Some root)
  | _ -> (m, None)

(* ------------------------------------------------------------------ *)
(* Trust boundaries                                                    *)

(* Calls into these modules launder taint: constant-time primitives
   whose results are safe to branch on. *)
let sanitizer_prefixes = [ "Crypto.Ct." ]

(* Calls into these modules are observable output — the server-visible
   trace, the wire, disk, and logs.  Every argument is an Output sink. *)
let output_prefixes =
  [ "Servsim.Wire."; "Servsim.Trace."; "Servsim.Remote."; "Store.Fsio."; "Core.Log." ]

let blank_labels n = List.init n (fun _ -> "")

let sanitizer_callee c nargs =
  { Taint.cname = c; csummary = Taint.bottom_summary ~arity:nargs ~labels:(blank_labels nargs) }

let output_callee c nargs =
  {
    Taint.cname = c;
    csummary =
      {
        Taint.arity = nargs;
        labels = blank_labels nargs;
        result = Taint.public;
        sinks = List.init nargs (fun i -> (i, Taint.Output));
      };
  }

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)

(* Per-use-site resolution context, captured when a function is
   registered: enclosing module paths (innermost first), wrapped-library
   root, file-level opens and module aliases seen so far. *)
type rctx = {
  selves : string list;
  lib_root : string option;
  opens : string list;
  aliases : (string * string) list;
}

type entry = {
  qname : string;
  epath : string;
  ectx : rctx;
  info : Taint.fn_info;
  forced_secret : bool;
  declassified : bool;
  mutable summary : Taint.summary;
}

(* Interface-side annotations, keyed by qualified value name. *)
type annot = {
  mutable a_secret : bool;
  mutable a_declassify : bool;
  mutable a_params : int list;
}

type acc = {
  annots : (string, annot) Hashtbl.t;
  labels : (string, unit) Hashtbl.t;  (* [@secret] record labels *)
  fns : (string, entry) Hashtbl.t;
  mutable order : entry list;  (* reversed *)
  mutable pre : (string * Location.t * string * string) list;  (* collection-time findings *)
  mutable anon : int;
}

let get_annot acc q =
  match Hashtbl.find_opt acc.annots q with
  | Some a -> a
  | None ->
      let a = { a_secret = false; a_declassify = false; a_params = [] } in
      Hashtbl.replace acc.annots q a;
      a

let missing_reason_msg =
  "[@lint.declassify] requires a justification string naming the leakage-model clause that \
   permits the flow"

(* Returns whether the attribute set declassifies, recording a finding
   when the justification is missing. *)
let declassifies acc path attrs =
  match Taint.declassify_reason attrs with
  | Some (_, Some _) -> true
  | Some (loc, None) ->
      acc.pre <- (path, loc, "declassify-missing-reason", missing_reason_msg) :: acc.pre;
      true
  | None -> false

let collect_labels acc (td : Parsetree.type_declaration) =
  match td.ptype_kind with
  | Ptype_record lds ->
      List.iter
        (fun (ld : Parsetree.label_declaration) ->
          if
            Taint.has_attr "secret" ld.pld_attributes
            || Taint.has_attr "secret" ld.pld_type.ptyp_attributes
          then Hashtbl.replace acc.labels ld.pld_name.txt ())
        lds
  | _ -> ()

(* Positions of arrow parameters carrying [@secret] in a val type. *)
let arrow_secret_params ty =
  let rec go i found (t : Parsetree.core_type) =
    match t.ptyp_desc with
    | Ptyp_arrow (_, a, b) ->
        let found = if Taint.has_attr "secret" a.ptyp_attributes then i :: found else found in
        go (i + 1) found b
    | Ptyp_poly (_, t') -> go i found t'
    | _ -> found
  in
  List.rev (go 0 [] ty)

let rec collect_sig acc ~path self (sg : Parsetree.signature) =
  List.iter
    (fun (it : Parsetree.signature_item) ->
      match it.psig_desc with
      | Psig_value vd ->
          let a = get_annot acc (self ^ "." ^ vd.pval_name.txt) in
          if Taint.has_attr "secret" vd.pval_attributes then a.a_secret <- true;
          if declassifies acc path vd.pval_attributes then a.a_declassify <- true;
          let ps = arrow_secret_params vd.pval_type in
          if ps <> [] then a.a_params <- List.sort_uniq compare (a.a_params @ ps)
      | Psig_type (_, decls) -> List.iter (collect_labels acc) decls
      | Psig_module md -> (
          match md.pmd_name.txt with
          | Some name ->
              let rec into (mt : Parsetree.module_type) =
                match mt.pmty_desc with
                | Pmty_signature sg' -> collect_sig acc ~path (self ^ "." ^ name) sg'
                | Pmty_functor (_, mt') -> into mt'
                | _ -> ()
              in
              into md.pmd_type
          | None -> ())
      | _ -> ())
    sg

let rec unroll_params pacc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) -> unroll_params ((lbl_name lbl, pat) :: pacc) body
  | Pexp_constraint (e', _) | Pexp_newtype (_, e') -> unroll_params pacc e'
  | _ -> (List.rev pacc, e)

let rec pat_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p', _) -> pat_name p'
  | _ -> None

let finalize_entry forced_secret declassified s =
  let s = if forced_secret then Taint.summary_force_secret s else s in
  if declassified then Taint.summary_declassify s else s

let register acc ~path ~ctx self (vb : Parsetree.value_binding) =
  let params, body = unroll_params [] vb.pvb_expr in
  let qname =
    match pat_name vb.pvb_pat with
    | Some n -> self ^ "." ^ n
    | None ->
        acc.anon <- acc.anon + 1;
        Printf.sprintf "%s.<top#%d>" self acc.anon
  in
  let an = Hashtbl.find_opt acc.annots qname in
  let forced_secret =
    Taint.has_attr "secret" vb.pvb_attributes
    || match an with Some a -> a.a_secret | None -> false
  in
  let declassified =
    declassifies acc path vb.pvb_attributes
    || match an with Some a -> a.a_declassify | None -> false
  in
  let secret_params = match an with Some a -> a.a_params | None -> [] in
  let info = { Taint.params; body; secret_params } in
  let entry =
    {
      qname;
      epath = path;
      ectx = ctx;
      info;
      forced_secret;
      declassified;
      summary =
        finalize_entry forced_secret declassified
          (Taint.bottom_summary ~arity:(List.length params) ~labels:(List.map fst params));
    }
  in
  Hashtbl.replace acc.fns qname entry;
  acc.order <- entry :: acc.order

let rec unwrap_mod (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_constraint (me', _) | Pmod_functor (_, me') -> unwrap_mod me'
  | _ -> me

(* Walk a structure, threading opens/aliases so later bindings resolve
   with everything in (lexical) scope at their definition point. *)
let rec collect_str acc ~path ~lib_root selves opens aliases (str : Parsetree.structure) =
  ignore
    (List.fold_left
       (fun (opens, aliases) (it : Parsetree.structure_item) ->
         match it.pstr_desc with
         | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
             (lid_str txt :: opens, aliases)
         | Pstr_value (_, vbs) ->
             let ctx = { selves; lib_root; opens; aliases } in
             List.iter (register acc ~path ~ctx (List.hd selves)) vbs;
             (opens, aliases)
         | Pstr_type (_, decls) ->
             List.iter (collect_labels acc) decls;
             (opens, aliases)
         | Pstr_module mb -> (
             match mb.pmb_name.txt with
             | Some name -> (
                 match (unwrap_mod mb.pmb_expr).pmod_desc with
                 | Pmod_ident { txt; _ } -> (opens, (name, lid_str txt) :: aliases)
                 | Pmod_structure s ->
                     collect_str acc ~path ~lib_root
                       ((List.hd selves ^ "." ^ name) :: selves)
                       opens aliases s;
                     (opens, aliases)
                 | _ -> (opens, aliases))
             | None -> (opens, aliases))
         | Pstr_include { pincl_mod = incl; _ } -> (
             match (unwrap_mod incl).pmod_desc with
             | Pmod_structure s ->
                 collect_str acc ~path ~lib_root selves opens aliases s;
                 (opens, aliases)
             | _ -> (opens, aliases))
         | _ -> (opens, aliases))
       (opens, aliases) str)

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

let candidates ctx raw =
  let expanded =
    match String.index_opt raw '.' with
    | Some i -> (
        let head = String.sub raw 0 i in
        match List.assoc_opt head ctx.aliases with
        | Some full -> full ^ String.sub raw i (String.length raw - i)
        | None -> raw)
    | None -> raw
  in
  let self_qualified = List.map (fun s -> s ^ "." ^ expanded) ctx.selves in
  let opened = List.map (fun o -> o ^ "." ^ expanded) ctx.opens in
  let cands =
    if String.contains expanded '.' then
      self_qualified
      @ (match ctx.lib_root with Some r -> [ r ^ "." ^ expanded ] | None -> [])
      @ [ expanded ] @ opened
    else self_qualified @ opened
  in
  (expanded, cands)

let resolver acc known_mods ctx lid nargs =
  match lid with
  | Longident.Lapply _ -> None
  | _ ->
      let raw = norm (lid_str lid) in
      let expanded, cands = candidates ctx raw in
      let hit c =
        (* Trust-boundary prefixes win over the function table (the
           boundary modules' own sources exist in the tree), but only
           when the candidate's module actually exists — otherwise
           "Servsim.Wire.Bytes.length" built from an unqualified use
           inside wire.ml would shadow the stdlib. *)
        if Hashtbl.mem known_mods (module_part c) then
          if List.exists (fun p -> starts_with ~prefix:p c) sanitizer_prefixes then
            Some (sanitizer_callee c nargs)
          else if List.exists (fun p -> starts_with ~prefix:p c) output_prefixes then
            Some (output_callee c nargs)
          else
            match Hashtbl.find_opt acc.fns c with
            | Some e -> Some { Taint.cname = c; csummary = e.summary }
            | None -> None
        else None
      in
      let rec first = function
        | [] -> Taint.builtin expanded nargs
        | c :: rest -> ( match hit c with Some _ as r -> r | None -> first rest)
      in
      first cands

(* ------------------------------------------------------------------ *)

let check (sources : Rule.source list) ~(report : Rule.tree_report) =
  let acc =
    {
      annots = Hashtbl.create 64;
      labels = Hashtbl.create 16;
      fns = Hashtbl.create 512;
      order = [];
      pre = [];
      anon = 0;
    }
  in
  (* Pass 1: interfaces — annotations and secret labels. *)
  List.iter
    (fun (s : Rule.source) ->
      match s.src_ast with
      | Rule.Intf sg ->
          let self, _ = module_path s.src_path in
          collect_sig acc ~path:s.src_path self sg
      | Rule.Impl _ -> ())
    sources;
  (* Pass 2: implementations — functions, labels, impl-side annotations. *)
  List.iter
    (fun (s : Rule.source) ->
      match s.src_ast with
      | Rule.Impl str ->
          let self, lib_root = module_path s.src_path in
          collect_str acc ~path:s.src_path ~lib_root [ self ] [] [] str
      | Rule.Intf _ -> ())
    sources;
  let entries = List.rev acc.order in
  let known_mods = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace known_mods (module_part e.qname) ()) entries;
  Hashtbl.iter (fun q _ -> Hashtbl.replace known_mods (module_part q) ()) acc.annots;
  let hooks_for e ~emit =
    {
      Taint.resolve = resolver acc known_mods e.ectx;
      secret_label = Hashtbl.mem acc.labels;
      emit;
    }
  in
  let no_emit _ ~tag:_ _ = () in
  (* Interprocedural fixpoint over all summaries. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 40 do
    incr rounds;
    changed := false;
    List.iter
      (fun e ->
        let s =
          finalize_entry e.forced_secret e.declassified
            (Taint.eval_function (hooks_for e ~emit:no_emit) ~reporting:false e.info)
        in
        if not (Taint.summary_equal s e.summary) then begin
          e.summary <- s;
          changed := true
        end)
      entries
  done;
  (* Collection-time findings (malformed declassify payloads). *)
  List.iter (fun (p, loc, tag, msg) -> report ~path:p ~loc ~tag msg) (List.rev acc.pre);
  (* Final reporting pass with stable summaries. *)
  List.iter
    (fun e ->
      let emit loc ~tag msg = report ~path:e.epath ~loc ~tag msg in
      ignore (Taint.eval_function (hooks_for e ~emit) ~reporting:true e.info))
    entries
