type t = {
  path : string;
  line : int;
  col : int;
  rule : string;
  tag : string;
  msg : string;
}

let v ~path ~line ~col ~rule ?(tag = "") msg = { path; line; col; rule; tag; msg }

let of_loc ~path ~rule ?tag (loc : Location.t) msg =
  let p = loc.loc_start in
  v ~path ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) ~rule ?tag msg

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d:%d [%s] %s" f.path f.line f.col f.rule f.msg
