type t = {
  path : string;
  line : int;
  col : int;
  rule : string;
  tag : string;
  msg : string;
}

let v ~path ~line ~col ~rule ?(tag = "") msg = { path; line; col; rule; tag; msg }

let of_loc ~path ~rule ?tag (loc : Location.t) msg =
  let p = loc.loc_start in
  v ~path ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) ~rule ?tag msg

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d:%d [%s] %s" f.path f.line f.col f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"path":"%s","line":%d,"col":%d,"rule":"%s","tag":"%s","msg":"%s"}|}
    (json_escape f.path) f.line f.col (json_escape f.rule) (json_escape f.tag)
    (json_escape f.msg)
